"""SIGKILL a live daemon mid-batch; a restart must finish exactly once.

These tests run real subprocess daemons over the real ``FeedbackService``
(no stubs): submit a batch, kill the daemon while some jobs are scored and
some are not, restart on the same store, and check that

* every job ends in exactly one terminal journal record (no re-scoring of
  completed work, no lost jobs), and
* the recovered scores are identical to a one-shot ``repro-serve`` run on
  the same records — on every worker-pool backend.
"""

import json
import os
import signal
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import pytest

from repro.jobs import JobsClient, JobStore, TERMINAL_STATES

TASK = "turn_right_traffic_light"
RESPONSES = (
    "1. Observe the traffic light.\n"
    "2. If the traffic light is not green, stop.\n"
    "3. If there is no car from the left and no pedestrian, turn right.",
    "1. Go.",
    "1. Stop.",
    "1. If the traffic light is green, turn right.",
    "1. Observe the traffic light.\n2. Turn right.",
    "1. Stop.\n2. If the traffic light is green, go.",
)


def _records():
    return [{"task": TASK, "response": response} for response in RESPONSES]


def _write_jsonl(path: Path, records) -> None:
    with path.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")


def _spawn_daemon(socket_path: Path, store_dir: Path, backend: str, *, throttle: float):
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.serving.cli",
            "daemon",
            "--socket",
            str(socket_path),
            "--store",
            str(store_dir),
            "--backend",
            backend,
            "--throttle-seconds",
            str(throttle),
            # Keep the whole history in the journal so the test can audit it.
            "--snapshot-every",
            "100000",
        ],
        env={**os.environ, "PYTHONPATH": "src"},
        cwd=Path(__file__).resolve().parents[2],
        stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.monotonic() + 30
    client = JobsClient(socket_path, client_id="crash-test", timeout=30)
    while True:
        try:
            client.stats()
            return proc, client
        except (ConnectionRefusedError, FileNotFoundError):
            assert proc.poll() is None, f"daemon died at startup:\n{proc.stderr.read()}"
            assert time.monotonic() < deadline, "daemon socket never came up"
            time.sleep(0.1)


@pytest.fixture(scope="module")
def oneshot_scores(tmp_path_factory):
    """Scores from the plain one-shot CLI path — the ground truth."""
    root = tmp_path_factory.mktemp("oneshot")
    inputs = root / "in.jsonl"
    output = root / "out.jsonl"
    _write_jsonl(inputs, _records())
    subprocess.run(
        [sys.executable, "-m", "repro.serving.cli", str(inputs), "-o", str(output)],
        env={**os.environ, "PYTHONPATH": "src"},
        cwd=Path(__file__).resolve().parents[2],
        check=True,
        capture_output=True,
    )
    scored = [json.loads(line) for line in output.read_text().splitlines()]
    assert len(scored) == len(RESPONSES)
    return {record["response"]: record["score"] for record in scored}


@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
def test_sigkill_midbatch_recovers_exactly_once(backend, oneshot_scores):
    root = Path(tempfile.mkdtemp(prefix="repro-crash-", dir="/tmp"))
    socket_path = root / "daemon.sock"
    store_dir = root / "store"
    proc2 = None
    try:
        proc, client = _spawn_daemon(socket_path, store_dir, backend, throttle=0.3)
        batch = client.create_batch(_records())["batch"]

        # Let some — but not all — jobs finish, then pull the plug.
        deadline = time.monotonic() + 60
        while True:
            done = client.stats()["states"].get("succeeded", 0)
            if 1 <= done < len(RESPONSES):
                break
            assert done < len(RESPONSES), "batch finished before the kill"
            assert time.monotonic() < deadline, "no job finished in time"
            time.sleep(0.05)
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)

        # A fresh daemon on the same store resumes the leftovers.
        proc2, client = _spawn_daemon(socket_path, store_dir, backend, throttle=0.0)
        final = client.wait_batch(batch["batch_id"])
        assert sorted(final) == batch["job_ids"]
        assert all(job["state"] == "succeeded" for job in final.values())

        # Recovered scores match the one-shot path bit for bit.
        for job in final.values():
            assert job["score"] == oneshot_scores[job["response"]], job["job_id"]

        # The journal holds the full history (snapshotting was disabled):
        # exactly one terminal record per job, ever.
        journal = store_dir / JobStore.JOURNAL_NAME
        terminal_counts = {job_id: 0 for job_id in batch["job_ids"]}
        for line in journal.read_text().splitlines():
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # a SIGKILL can tear the final line mid-write
            if record["kind"] == "job" and record["job"]["state"] in TERMINAL_STATES:
                terminal_counts[record["job"]["job_id"]] += 1
        assert terminal_counts == {job_id: 1 for job_id in batch["job_ids"]}

        client.shutdown()
        assert proc2.wait(timeout=30) == 0
        proc2 = None
    finally:
        for running in (locals().get("proc"), proc2):
            if running is not None and running.poll() is None:
                running.kill()
                running.wait(timeout=10)
        shutil.rmtree(root, ignore_errors=True)
