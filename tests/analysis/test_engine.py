"""Engine behaviour: suppression semantics, syntax errors, report plumbing."""

from __future__ import annotations

import textwrap

from repro.analysis import (
    AnalysisReport,
    Finding,
    analyze_source,
    parse_suppressions,
    run_analysis,
)
from repro.analysis.engine import SUPPRESSION_RULE_ID
from repro.analysis.rules import NondeterministicIterationRule, SwallowedExceptionRule


def _src(code: str) -> str:
    return textwrap.dedent(code).lstrip("\n")


class TestParseSuppressions:
    def test_trailing_comment_applies_to_its_own_line(self):
        source = _src(
            """
            x = 1  # repro: allow[swallowed-exception] — justified here
            """
        )
        (supp,) = parse_suppressions(source)
        assert supp.line == 1
        assert supp.applies_to == 1
        assert supp.rule_id == "swallowed-exception"
        assert supp.reason == "justified here"

    def test_standalone_comment_applies_to_next_line(self):
        source = _src(
            """
            # repro: allow[atomic-write] — scratch file, never read back
            path.write_text(data)
            """
        )
        (supp,) = parse_suppressions(source)
        assert supp.line == 1
        assert supp.applies_to == 2

    def test_hyphen_and_colon_reason_separators(self):
        source = _src(
            """
            a = 1  # repro: allow[falsy-default] - caller audited
            b = 2  # repro: allow[falsy-default]: caller audited
            """
        )
        first, second = parse_suppressions(source)
        assert first.reason == "caller audited"
        assert second.reason == "caller audited"

    def test_missing_reason_parses_as_none(self):
        (supp,) = parse_suppressions("x = 1  # repro: allow[atomic-write]\n")
        assert supp.reason is None

    def test_docstring_mention_is_not_a_suppression(self):
        source = _src(
            '''
            def f():
                """Write `# repro: allow[rule-id] — reason` to suppress."""
                return 1
            '''
        )
        assert parse_suppressions(source) == []

    def test_unparseable_source_returns_partial_list(self):
        # An unterminated string ends tokenisation early; the comment before
        # it is still collected.
        source = "x = 1  # repro: allow[atomic-write] — fine\ny = '''\n"
        (supp,) = parse_suppressions(source)
        assert supp.applies_to == 1


class TestCheckedSuppressions:
    def test_valid_suppression_silences_the_finding(self):
        source = _src(
            """
            def f():
                # repro: allow[nondeterministic-iteration] — output is re-sorted downstream
                for x in {1, 2}:
                    print(x)
            """
        )
        findings = analyze_source(source, "x.py", [NondeterministicIterationRule()])
        assert findings == []

    def test_unknown_rule_id_is_itself_a_finding(self):
        source = "x = 1  # repro: allow[no-such-rule] — whatever\n"
        (finding,) = analyze_source(source, "x.py", [NondeterministicIterationRule()])
        assert finding.rule_id == SUPPRESSION_RULE_ID
        assert "no-such-rule" in finding.message

    def test_missing_reason_is_itself_a_finding(self):
        source = _src(
            """
            def f():
                # repro: allow[nondeterministic-iteration]
                for x in {1, 2}:
                    print(x)
            """
        )
        findings = analyze_source(source, "x.py", [NondeterministicIterationRule()])
        # The reason-less suppression does NOT silence the original finding,
        # and adds a defect finding of its own.
        assert {f.rule_id for f in findings} == {
            SUPPRESSION_RULE_ID,
            "nondeterministic-iteration",
        }

    def test_suppression_only_covers_the_named_rule(self):
        source = _src(
            """
            def f():
                try:
                    # repro: allow[nondeterministic-iteration] — wrong rule named
                    for x in {1, 2}:
                        print(x)
                except Exception:
                    pass
            """
        )
        findings = analyze_source(
            source, "x.py", [NondeterministicIterationRule(), SwallowedExceptionRule()]
        )
        assert [f.rule_id for f in findings] == ["swallowed-exception"]


class TestAnalyzeSource:
    def test_syntax_error_yields_single_finding(self):
        (finding,) = analyze_source("def broken(:\n", "bad.py")
        assert finding.rule_id == "syntax-error"
        assert finding.file == "bad.py"

    def test_findings_are_sorted_by_location(self):
        source = _src(
            """
            def f():
                for x in {3}:
                    print(x)
            def g():
                for y in {4}:
                    print(y)
            """
        )
        findings = analyze_source(source, "x.py", [NondeterministicIterationRule()])
        assert [f.line for f in findings] == sorted(f.line for f in findings)
        assert len(findings) == 2

    def test_finding_format_and_dict(self):
        finding = Finding(file="a.py", line=3, rule_id="r", message="m")
        assert finding.format() == "a.py:3: [r] m"
        assert finding.to_dict() == {"file": "a.py", "line": 3, "rule_id": "r", "message": "m"}


class TestRunAnalysis:
    def test_walks_directories_and_reports_relative_paths(self, tmp_path):
        package = tmp_path / "pkg"
        package.mkdir()
        (package / "clean.py").write_text("x = 1\n")
        (package / "dirty.py").write_text("for x in {1, 2}:\n    print(x)\n")
        report = run_analysis([package], relative_to=tmp_path)
        assert isinstance(report, AnalysisReport)
        assert report.files_checked == 2
        (finding,) = report.findings
        assert finding.file == "pkg/dirty.py"
        assert not report.clean

    def test_clean_report_round_trips_to_dict(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        report = run_analysis([tmp_path])
        assert report.clean
        document = report.to_dict()
        assert document["findings"] == []
        assert document["lock_order"]["cycles"] == []

    def test_lock_order_can_be_disabled(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        report = run_analysis([tmp_path], lock_order=False)
        assert report.lock_acquisitions == []
        assert report.lock_edges == []
