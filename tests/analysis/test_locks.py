"""Lock-order analyzer tests: extraction, edges, and cycle detection.

The load-bearing case is the seeded inversion — one class takes A then B,
another path takes B then A — which must surface as exactly one reported
cycle.  The rest pins the graph construction: call-through edges, factory
context managers, and the re-entrancy exemption.
"""

from __future__ import annotations

import textwrap

from repro.analysis import LockOrderAnalyzer
from repro.analysis.locks import LOCK_CYCLE_RULE_ID


def analyzer_for(code: str, path: str = "mod.py") -> LockOrderAnalyzer:
    analyzer = LockOrderAnalyzer()
    analyzer.add_file(path, textwrap.dedent(code).lstrip("\n"))
    return analyzer


INVERSION = """
import threading

class Store:
    def __init__(self):
        self.index_lock = threading.Lock()
        self.data_lock = threading.Lock()

    def read(self):
        with self.index_lock:
            with self.data_lock:
                return self._data

    def write(self, value):
        with self.data_lock:
            with self.index_lock:     # inverted order: potential deadlock
                self._data = value
"""


class TestCycleDetection:
    def test_seeded_inversion_is_reported_as_one_cycle(self):
        analyzer = analyzer_for(INVERSION)
        (cycle,) = analyzer.cycles()
        assert set(cycle) == {"Store.index_lock", "Store.data_lock"}
        # Normalised to start at the lexicographically smallest lock.
        assert cycle[0] == min(cycle)

    def test_cycle_produces_a_finding_with_the_path(self):
        analyzer = analyzer_for(INVERSION)
        (finding,) = analyzer.findings()
        assert finding.rule_id == LOCK_CYCLE_RULE_ID
        assert "Store.index_lock" in finding.message
        assert "Store.data_lock" in finding.message
        assert finding.file == "mod.py"

    def test_consistent_order_is_cycle_free(self):
        consistent = """
        import threading

        class Store:
            def __init__(self):
                self.index_lock = threading.Lock()
                self.data_lock = threading.Lock()

            def read(self):
                with self.index_lock:
                    with self.data_lock:
                        return self._data

            def write(self, value):
                with self.index_lock:
                    with self.data_lock:
                        self._data = value
        """
        analyzer = analyzer_for(consistent)
        assert analyzer.cycles() == []
        assert analyzer.findings() == []
        assert analyzer.graph() == {"Store.index_lock": ["Store.data_lock"]}

    def test_cross_file_inversion_is_detected(self):
        # The graph accumulates across files: reader.py takes A→B,
        # writer.py (same class name) takes B→A.
        reader = """
        class Store:
            def read(self):
                with self.a_lock:
                    with self.b_lock:
                        pass
        """
        writer = """
        class Store:
            def write(self):
                with self.b_lock:
                    with self.a_lock:
                        pass
        """
        analyzer = LockOrderAnalyzer()
        analyzer.add_file("reader.py", textwrap.dedent(reader))
        analyzer.add_file("writer.py", textwrap.dedent(writer))
        assert len(analyzer.cycles()) == 1


class TestGraphConstruction:
    def test_single_with_multiple_items_orders_left_to_right(self):
        code = """
        class Pair:
            def both(self):
                with self.a_lock, self.b_lock:
                    pass
        """
        analyzer = analyzer_for(code)
        assert analyzer.graph() == {"Pair.a_lock": ["Pair.b_lock"]}

    def test_reentrant_self_acquisition_is_not_an_edge(self):
        code = """
        import threading

        class Metrics:
            def __init__(self):
                self._lock = threading.RLock()

            def snapshot(self):
                with self._lock:
                    with self._lock:   # legal RLock re-entry
                        return 1
        """
        analyzer = analyzer_for(code)
        assert analyzer.edges == []
        assert analyzer.cycles() == []

    def test_contextmanager_factory_counts_as_acquisition(self):
        code = """
        class Cache:
            def update(self, shard):
                with self._store_lock(shard):
                    with self.meta_lock:
                        pass
        """
        analyzer = analyzer_for(code)
        (edge,) = analyzer.edges
        assert edge.outer == "Cache._store_lock"
        assert edge.inner == "Cache.meta_lock"

    def test_call_through_edge_via_method_summary(self):
        # read() holds index_lock and calls _load(), which takes data_lock:
        # the edge exists even though the with-blocks never nest textually.
        code = """
        import threading

        class Store:
            def __init__(self):
                self.index_lock = threading.Lock()
                self.data_lock = threading.Lock()

            def read(self):
                with self.index_lock:
                    return self._load()

            def _load(self):
                with self.data_lock:
                    return self._data
        """
        analyzer = analyzer_for(code)
        (edge,) = analyzer.edges
        assert (edge.outer, edge.inner) == ("Store.index_lock", "Store.data_lock")
        assert edge.via == "self._load"

    def test_transitive_call_through_is_summarised_to_fixpoint(self):
        code = """
        import threading

        class Store:
            def __init__(self):
                self.a_lock = threading.Lock()
                self.b_lock = threading.Lock()

            def outer(self):
                with self.a_lock:
                    self._middle()

            def _middle(self):
                self._inner()

            def _inner(self):
                with self.b_lock:
                    pass
        """
        analyzer = analyzer_for(code)
        assert [(e.outer, e.inner) for e in analyzer.edges] == [("Store.a_lock", "Store.b_lock")]

    def test_non_lock_context_managers_are_ignored(self):
        code = """
        class Exporter:
            def export(self, path):
                with self.span("export"):
                    with path.open("a") as f:
                        f.write("x")
        """
        analyzer = analyzer_for(code)
        assert analyzer.acquisitions == []
        assert analyzer.edges == []

    def test_lockish_names_count_without_constructor_evidence(self):
        # `self._cond` never appears with a threading constructor in this
        # file, but the name says synchronisation.
        code = """
        class Queue:
            def drain(self):
                with self._cond:
                    pass
        """
        analyzer = analyzer_for(code)
        (acq,) = analyzer.acquisitions
        assert acq.lock == "Queue._cond"
        assert acq.function == "drain"

    def test_module_level_bare_lock_names(self):
        code = """
        import threading

        _registry_lock = threading.Lock()

        def register(name):
            with _registry_lock:
                pass
        """
        analyzer = analyzer_for(code)
        (acq,) = analyzer.acquisitions
        assert acq.lock == "_registry_lock"

    def test_syntax_error_files_are_skipped(self):
        analyzer = LockOrderAnalyzer()
        analyzer.add_file("bad.py", "def broken(:\n")
        assert analyzer.acquisitions == []

    def test_edge_and_acquisition_dicts(self):
        analyzer = analyzer_for(INVERSION)
        for record in analyzer.acquisitions:
            assert set(record.to_dict()) == {"lock", "file", "line", "function"}
        for edge in analyzer.edges:
            assert set(edge.to_dict()) == {"outer", "inner", "file", "line", "via"}
