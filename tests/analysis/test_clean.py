"""Tier-1 gate: the linter runs clean on the codebase's own source.

This is the point of the whole subsystem — the rules encode invariants this
repo has already paid for in real bugs, so a finding here is a regression (or
a new rule that needs either a fix or a reasoned suppression).  The lock-order
graph over serving/ + dpo/ must stay cycle-free for the same reason.
"""

from __future__ import annotations

from pathlib import Path

import repro
from repro.analysis import run_analysis

PACKAGE_ROOT = Path(repro.__file__).resolve().parent


def test_repro_source_is_lint_clean():
    report = run_analysis([PACKAGE_ROOT], relative_to=PACKAGE_ROOT.parent)
    formatted = "\n".join(finding.format() for finding in report.findings)
    assert report.clean, f"repro-lint findings on src/repro:\n{formatted}"
    # The gate must actually have analyzed the tree, not an empty directory.
    assert report.files_checked > 50


def test_lock_order_graph_is_cycle_free():
    report = run_analysis([PACKAGE_ROOT], relative_to=PACKAGE_ROOT.parent)
    assert report.lock_cycles == []
    # serving/ and dpo/ both contribute acquisitions to the graph.
    files = {acq.file for acq in report.lock_acquisitions}
    assert any("serving" in f for f in files)
    assert any("dpo" in f for f in files)
