"""``repro-lint`` CLI tests: exit codes, formats, rule selection."""

from __future__ import annotations

import json

import pytest

from repro.analysis.cli import default_target, main, select_rules


@pytest.fixture()
def dirty_tree(tmp_path):
    (tmp_path / "dirty.py").write_text("for x in {1, 2}:\n    print(x)\n")
    return tmp_path


@pytest.fixture()
def clean_tree(tmp_path):
    (tmp_path / "clean.py").write_text("x = 1\n")
    return tmp_path


def test_exit_zero_on_clean_tree(clean_tree, capsys):
    assert main([str(clean_tree)]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out
    assert "cycle-free" in out


def test_exit_one_with_findings(dirty_tree, capsys):
    assert main([str(dirty_tree)]) == 1
    out = capsys.readouterr().out
    assert "[nondeterministic-iteration]" in out
    assert "dirty.py:1:" in out


def test_exit_two_on_missing_path(tmp_path, capsys):
    assert main([str(tmp_path / "nope")]) == 2
    assert "no such path" in capsys.readouterr().err


def test_json_format_is_a_deterministic_document(dirty_tree, capsys):
    assert main([str(dirty_tree), "--format", "json"]) == 1
    first = capsys.readouterr().out
    assert main([str(dirty_tree), "--format", "json"]) == 1
    second = capsys.readouterr().out
    assert first == second
    document = json.loads(first)
    assert document["files_checked"] == 1
    (finding,) = document["findings"]
    assert finding["rule_id"] == "nondeterministic-iteration"
    assert document["lock_order"]["cycles"] == []


def test_rules_flag_selects_a_subset(dirty_tree):
    # The only finding is nondeterministic-iteration; running a different
    # rule alone must come back clean.
    assert main([str(dirty_tree), "--rules", "atomic-write"]) == 0
    assert main([str(dirty_tree), "--rules", "nondeterministic-iteration"]) == 1


def test_unknown_rule_id_rejected():
    with pytest.raises(SystemExit, match="unknown rule id"):
        select_rules("no-such-rule")


def test_no_lock_order_skips_the_graph(clean_tree, capsys):
    assert main([str(clean_tree), "--no-lock-order"]) == 0
    assert "lock-order graph" not in capsys.readouterr().out


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in (
        "atomic-write",
        "falsy-default",
        "unguarded-shared-mutation",
        "rebind-shared-container",
        "nondeterministic-iteration",
        "swallowed-exception",
    ):
        assert rule_id in out


def test_default_target_is_the_installed_package():
    target = default_target()
    assert target.name == "repro"
    assert (target / "analysis").is_dir()
