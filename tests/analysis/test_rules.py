"""Per-rule tests: every rule catches its seeded violation and passes a clean twin.

Each bad fixture is a miniature of the real (fixed) bug the rule was distilled
from; each clean twin is the shape the fix produced.  A rule that cannot tell
the two apart is either blind or noisy.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import analyze_source
from repro.analysis.rules import (
    DEFAULT_RULES,
    AtomicWriteRule,
    FalsyDefaultRule,
    NondeterministicIterationRule,
    RebindSharedContainerRule,
    SwallowedExceptionRule,
    UnguardedSharedMutationRule,
    class_lock_attributes,
    default_rules,
    dotted_name,
)


def check(rule, code: str, path: str = "pkg/module.py") -> list:
    """Findings of one rule over a dedented source snippet."""
    return analyze_source(textwrap.dedent(code).lstrip("\n"), path, [rule])


class TestAtomicWrite:
    def test_flags_write_text(self):
        (finding,) = check(AtomicWriteRule(), "path.write_text(data)\n")
        assert finding.rule_id == "atomic-write"

    def test_flags_write_bytes(self):
        (finding,) = check(AtomicWriteRule(), "path.write_bytes(data)\n")
        assert finding.rule_id == "atomic-write"

    def test_flags_builtin_open_w(self):
        (finding,) = check(AtomicWriteRule(), 'f = open(p, "w")\n')
        assert "w" in finding.message

    def test_flags_path_open_w_and_mode_keyword(self):
        assert check(AtomicWriteRule(), 'f = p.open("w")\n')
        assert check(AtomicWriteRule(), 'f = open(p, mode="wb")\n')

    def test_clean_twins_read_append_and_atomic_helper(self):
        clean = """
        from repro.utils.atomic import write_text_atomic

        def save(path, text):
            write_text_atomic(path, text)
            with path.open() as f:        # read
                f.read()
            with path.open("a") as f:     # append never truncates
                f.write(text)
        """
        assert check(AtomicWriteRule(), clean) == []

    def test_whitelisted_module_is_exempt(self):
        source = "path.write_text(data)\n"
        assert check(AtomicWriteRule(), source, path="src/repro/utils/atomic.py") == []
        assert check(AtomicWriteRule(), source, path="src/repro/utils/other.py")


class TestFalsyDefault:
    def test_flags_or_default_of_parameter(self):
        bad = """
        def evaluate(num_samples=None):
            num_samples = num_samples or 25
            return num_samples
        """
        (finding,) = check(FalsyDefaultRule(), bad)
        assert finding.rule_id == "falsy-default"
        assert "num_samples" in finding.message

    def test_flags_container_defaults(self):
        bad = """
        def load(entries=None, names=None):
            entries = entries or []
            names = names or dict()
            return entries, names
        """
        assert len(check(FalsyDefaultRule(), bad)) == 2

    def test_clean_twin_uses_is_none(self):
        clean = """
        def evaluate(num_samples=None):
            if num_samples is None:
                num_samples = 25
            return num_samples
        """
        assert check(FalsyDefaultRule(), clean) == []

    def test_or_between_locals_is_not_flagged(self):
        clean = """
        def pick(flag=None):
            fallback = 25
            chosen = fallback or 30   # not a parameter
            other = flag or compute() # not a literal default
            return chosen, other
        """
        assert check(FalsyDefaultRule(), clean) == []


class TestUnguardedSharedMutation:
    BAD = """
    import threading

    class Metrics:
        def __init__(self):
            self._lock = threading.Lock()
            self.hits = 0

        def record_hit(self):
            with self._lock:
                self.hits += 1

        def record_hit_fast(self):
            self.hits += 1     # off-lock: the ServingMetrics bug
    """

    def test_flags_off_lock_mutation_of_guarded_attr(self):
        (finding,) = check(UnguardedSharedMutationRule(), self.BAD)
        assert finding.rule_id == "unguarded-shared-mutation"
        assert "self.hits" in finding.message

    def test_clean_twin_takes_the_lock_everywhere(self):
        clean = """
        import threading

        class Metrics:
            def __init__(self):
                self._lock = threading.Lock()
                self.hits = 0

            def record_hit(self):
                with self._lock:
                    self.hits += 1

            def record_hit_fast(self):
                with self._lock:
                    self.hits += 1
        """
        assert check(UnguardedSharedMutationRule(), clean) == []

    def test_init_is_exempt(self):
        # The single finding is the off-lock bump in record_hit_fast; the
        # unguarded `self.hits = 0` in __init__ is never reported.
        (finding,) = check(UnguardedSharedMutationRule(), self.BAD)
        assert finding.line == 13

    def test_locked_suffix_convention_is_honoured(self):
        clean = """
        import threading

        class Metrics:
            def __init__(self):
                self._lock = threading.Lock()
                self.hits = 0

            def record(self):
                with self._lock:
                    self._bump_locked()

            def _bump_locked(self):
                self.hits += 1
        """
        assert check(UnguardedSharedMutationRule(), clean) == []

    def test_private_method_called_only_under_lock_is_exempt(self):
        clean = """
        import threading

        class Metrics:
            def __init__(self):
                self._lock = threading.Lock()
                self.hits = 0

            def record(self):
                with self._lock:
                    self._bump()

            def _bump(self):
                self.hits += 1
        """
        assert check(UnguardedSharedMutationRule(), clean) == []

    def test_private_method_with_an_unlocked_call_site_is_flagged(self):
        bad = """
        import threading

        class Metrics:
            def __init__(self):
                self._lock = threading.Lock()
                self.hits = 0

            def record(self):
                with self._lock:
                    self._bump()

            def record_unsafe(self):
                self._bump()

            def _bump(self):
                self.hits += 1
        """
        (finding,) = check(UnguardedSharedMutationRule(), bad)
        assert "self.hits" in finding.message

    def test_dataclass_lock_field_and_inplace_mutations(self):
        bad = """
        import threading
        from dataclasses import dataclass, field

        @dataclass
        class Telemetry:
            _lock: threading.RLock = field(default_factory=threading.RLock)
            stages: dict = field(default_factory=dict)

            def record(self, name, value):
                with self._lock:
                    self.stages[name] = value

            def record_fast(self, name, value):
                self.stages[name] = value
        """
        (finding,) = check(UnguardedSharedMutationRule(), bad)
        assert "self.stages" in finding.message

    def test_unguarded_only_attrs_are_not_flagged(self):
        # An attribute never mutated under the lock is not "guarded"; the
        # rule only enforces consistency, not blanket locking.
        clean = """
        import threading

        class Worker:
            def __init__(self):
                self._lock = threading.Lock()
                self.scratch = 0

            def bump(self):
                self.scratch += 1
        """
        assert check(UnguardedSharedMutationRule(), clean) == []


class TestRebindSharedContainer:
    BAD = """
    class Metrics:
        def __init__(self):
            self.stage_seconds = {}

        def reset(self):
            self.stage_seconds = {}   # strands registry providers
    """

    def test_flags_rebinding_reset(self):
        (finding,) = check(RebindSharedContainerRule(), self.BAD)
        assert finding.rule_id == "rebind-shared-container"
        assert "stage_seconds" in finding.message

    def test_clean_twin_clears_in_place(self):
        clean = """
        class Metrics:
            def __init__(self):
                self.stage_seconds = {}

            def reset(self):
                self.stage_seconds.clear()
        """
        assert check(RebindSharedContainerRule(), clean) == []

    def test_flags_empty_constructor_rebind_of_dataclass_field(self):
        bad = """
        from collections import deque
        from dataclasses import dataclass, field

        @dataclass
        class Buffer:
            items: deque = field(default_factory=deque)

            def reset(self):
                self.items = deque()
        """
        (finding,) = check(RebindSharedContainerRule(), bad)
        assert "items" in finding.message

    def test_rebinding_to_nonempty_value_is_allowed(self):
        # Replacing contents wholesale (e.g. a computed snapshot) is not the
        # clear-by-rebind bug.
        clean = """
        class Cache:
            def __init__(self):
                self.entries = {}

            def reload(self, loaded):
                self.entries = dict(loaded)
        """
        assert check(RebindSharedContainerRule(), clean) == []


class TestNondeterministicIteration:
    def test_flags_for_loop_over_set_comprehension(self):
        bad = """
        def prepare(jobs):
            for scenario in {job.scenario for job in jobs}:
                build(scenario)
        """
        (finding,) = check(NondeterministicIterationRule(), bad)
        assert finding.rule_id == "nondeterministic-iteration"

    def test_flags_set_literal_call_and_join(self):
        bad = """
        def render(names):
            ordered = list(set(names))
            text = ", ".join({n.title() for n in names})
            for item in {1, 2, 3}:
                print(item)
        """
        assert len(check(NondeterministicIterationRule(), bad)) == 3

    def test_clean_twin_sorts_first(self):
        clean = """
        def prepare(jobs):
            for scenario in sorted({job.scenario for job in jobs}):
                build(scenario)
        """
        assert check(NondeterministicIterationRule(), clean) == []

    def test_order_insensitive_folds_are_not_flagged(self):
        clean = """
        def stats(names):
            total = len(set(names))
            any_hit = any(n in {"a", "b"} for n in names)
            return total, any_hit, sum({1, 2})
        """
        assert check(NondeterministicIterationRule(), clean) == []


class TestSwallowedException:
    def test_flags_bare_except(self):
        bad = """
        try:
            work()
        except:
            pass
        """
        (finding,) = check(SwallowedExceptionRule(), bad)
        assert "bare" in finding.message

    def test_flags_broad_except_dropping_the_error(self):
        bad = """
        try:
            work()
        except Exception:
            pass
        """
        (finding,) = check(SwallowedExceptionRule(), bad)
        assert finding.rule_id == "swallowed-exception"

    def test_broad_except_that_logs_or_reraises_is_clean(self):
        clean = """
        try:
            work()
        except Exception as exc:
            log.warning("failed: %s", exc)
        try:
            work()
        except BaseException:
            cleanup()
            raise
        """
        assert check(SwallowedExceptionRule(), clean) == []

    def test_narrow_except_is_clean_even_when_dropping(self):
        clean = """
        try:
            path.unlink()
        except FileNotFoundError:
            pass
        """
        assert check(SwallowedExceptionRule(), clean) == []

    def test_broad_member_of_tuple_is_flagged(self):
        bad = """
        try:
            work()
        except (ValueError, Exception):
            pass
        """
        assert check(SwallowedExceptionRule(), bad)


class TestHelpers:
    def test_dotted_name(self):
        import ast

        expr = ast.parse("a.b.c", mode="eval").body
        assert dotted_name(expr) == "a.b.c"
        assert dotted_name(ast.parse("f()", mode="eval").body) is None

    def test_class_lock_attributes_plain_and_dataclass(self):
        import ast

        source = textwrap.dedent(
            """
            class Mixed:
                _cond: threading.Condition = field(default_factory=threading.Condition)

                def __init__(self):
                    self._lock = threading.Lock()
                    self.data = {}
            """
        )
        cls = ast.parse(source).body[0]
        assert class_lock_attributes(cls) == {"_lock", "_cond"}

    def test_default_rules_are_fresh_instances(self):
        first, second = default_rules(), default_rules()
        assert [type(r) for r in first] == list(DEFAULT_RULES)
        assert all(a is not b for a, b in zip(first, second))

    @pytest.mark.parametrize("rule_class", DEFAULT_RULES)
    def test_every_rule_declares_id_and_description(self, rule_class):
        rule = rule_class()
        assert rule.rule_id
        assert rule.description
        assert check(rule, "x = 1\n") == []
