"""repro.utils.atomic: the tmp + os.replace idiom and the incremental writer."""

from __future__ import annotations

import json

import pytest

from repro.utils.atomic import AtomicTextWriter, write_bytes_atomic, write_text_atomic
from repro.utils.serialization import dump_json, dump_json_atomic, load_json


def no_tmp_litter(tmp_path) -> bool:
    return list(tmp_path.rglob("*.tmp.*")) == []


class TestWholeFileHelpers:
    def test_write_text_atomic_creates_parents_and_cleans_tmp(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "out.txt"
        assert write_text_atomic(target, "hello") == target
        assert target.read_text() == "hello"
        assert no_tmp_litter(tmp_path)

    def test_write_text_atomic_replaces_existing_content(self, tmp_path):
        target = tmp_path / "out.txt"
        write_text_atomic(target, "old")
        write_text_atomic(target, "new")
        assert target.read_text() == "new"

    def test_write_bytes_atomic(self, tmp_path):
        target = tmp_path / "out.bin"
        write_bytes_atomic(target, b"\x00\x01")
        assert target.read_bytes() == b"\x00\x01"
        assert no_tmp_litter(tmp_path)

    def test_dump_json_is_atomic_and_aliased(self, tmp_path):
        # Serialization failure must not touch an existing artifact: the
        # payload is encoded before any file is opened.
        target = tmp_path / "doc.json"
        dump_json({"ok": 1}, target)
        with pytest.raises(TypeError):
            dump_json({"bad": object()}, target)
        assert load_json(target) == {"ok": 1}
        assert no_tmp_litter(tmp_path)
        assert dump_json_atomic is dump_json


class TestAtomicTextWriter:
    def test_target_invisible_until_commit(self, tmp_path):
        target = tmp_path / "records.jsonl"
        writer = AtomicTextWriter(target)
        writer.write(json.dumps({"i": 1}) + "\n")
        writer.flush()
        assert not target.exists()
        assert writer.tmp_path.exists()
        assert writer.tmp_path.name.startswith("records.jsonl.tmp.")
        writer.write(json.dumps({"i": 2}) + "\n")
        assert writer.commit() == target
        assert [json.loads(line) for line in target.read_text().splitlines()] == [
            {"i": 1},
            {"i": 2},
        ]
        assert no_tmp_litter(tmp_path)

    def test_discard_drops_the_partial_file(self, tmp_path):
        target = tmp_path / "records.jsonl"
        writer = AtomicTextWriter(target)
        writer.write("partial")
        writer.discard()
        assert not target.exists()
        assert no_tmp_litter(tmp_path)

    def test_commit_and_discard_are_idempotent(self, tmp_path):
        target = tmp_path / "out.txt"
        writer = AtomicTextWriter(target)
        writer.write("x")
        writer.commit()
        writer.commit()
        writer.discard()  # after commit: a no-op, the file stays
        assert target.read_text() == "x"

    def test_failed_commit_cleans_tmp_and_keeps_old_content(self, tmp_path):
        import shutil

        target = tmp_path / "dir" / "out.txt"
        writer = AtomicTextWriter(target)
        writer.write("new")
        shutil.rmtree(target.parent)
        with pytest.raises(OSError):
            writer.commit()
        assert no_tmp_litter(tmp_path)

    def test_context_manager_commits_on_success(self, tmp_path):
        target = tmp_path / "out.txt"
        with AtomicTextWriter(target) as writer:
            writer.write("done")
        assert target.read_text() == "done"

    def test_context_manager_discards_on_error(self, tmp_path):
        target = tmp_path / "out.txt"
        with pytest.raises(RuntimeError):
            with AtomicTextWriter(target) as writer:
                writer.write("half")
                raise RuntimeError("boom")
        assert not target.exists()
        assert no_tmp_litter(tmp_path)
