"""The shared jittered-backoff policy and retry loop."""

import random

import pytest

from repro.utils import RetryPolicy, call_with_retry


class TestRetryPolicy:
    def test_delay_progression_caps_at_max(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.1, multiplier=2.0, max_delay=0.35)
        assert [policy.delay(n) for n in (1, 2, 3, 4)] == [0.1, 0.2, 0.35, 0.35]

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, max_delay=1.0, jitter=0.25)
        rng = random.Random(7)
        for _ in range(100):
            assert 0.75 <= policy.delay(1, rng) <= 1.25

    def test_no_rng_means_deterministic(self):
        policy = RetryPolicy(base_delay=0.5, jitter=0.5)
        assert policy.delay(1) == 0.5

    def test_delays_enumerates_the_waits(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.1, multiplier=2.0, max_delay=10.0, jitter=0.0)
        assert list(policy.delays()) == [pytest.approx(0.1), pytest.approx(0.2), pytest.approx(0.4)]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(max_delay=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestCallWithRetry:
    def test_succeeds_after_transient_failures(self):
        attempts = []

        def flaky():
            attempts.append(len(attempts))
            if len(attempts) < 3:
                raise RuntimeError("transient")
            return "ok"

        slept = []
        result = call_with_retry(
            flaky,
            policy=RetryPolicy(max_attempts=3, base_delay=0.1, multiplier=2.0, max_delay=9.0),
            sleep=slept.append,
        )
        assert result == "ok"
        assert len(attempts) == 3
        assert slept == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_exhaustion_raises_the_last_error(self):
        def always_fails():
            raise RuntimeError("permanent")

        with pytest.raises(RuntimeError, match="permanent"):
            call_with_retry(
                always_fails,
                policy=RetryPolicy(max_attempts=2, base_delay=0.01),
                sleep=lambda _s: None,
            )

    def test_non_matching_exceptions_propagate_immediately(self):
        calls = []

        def raises_type_error():
            calls.append(1)
            raise TypeError("not retryable")

        with pytest.raises(TypeError):
            call_with_retry(
                raises_type_error,
                policy=RetryPolicy(max_attempts=5, base_delay=0.01),
                retry_on=(RuntimeError,),
                sleep=lambda _s: None,
            )
        assert len(calls) == 1

    def test_on_retry_observes_each_failure(self):
        seen = []

        def fail_twice():
            if len(seen) < 2:
                raise RuntimeError(f"boom {len(seen)}")
            return 42

        result = call_with_retry(
            fail_twice,
            policy=RetryPolicy(max_attempts=3, base_delay=0.5, multiplier=2.0, max_delay=9.0),
            sleep=lambda _s: None,
            on_retry=lambda failures, exc, wait: seen.append((failures, str(exc), wait)),
        )
        assert result == 42
        assert seen == [
            (1, "boom 0", pytest.approx(0.5)),
            (2, "boom 1", pytest.approx(1.0)),
        ]

    def test_jittered_sleeps_use_the_supplied_rng(self):
        failures = []

        def fail_once():
            if not failures:
                failures.append(1)
                raise RuntimeError("once")
            return True

        slept = []
        policy = RetryPolicy(max_attempts=2, base_delay=1.0, multiplier=1.0, max_delay=1.0, jitter=0.5)
        assert call_with_retry(
            fail_once, policy=policy, sleep=slept.append, rng=random.Random(3)
        )
        assert len(slept) == 1 and 0.5 <= slept[0] <= 1.5
