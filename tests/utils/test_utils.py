"""Tests for shared utilities."""

import dataclasses

import numpy as np
import pytest

from repro.utils import check_in_options, check_positive, check_probability, seeded_rng, spawn_rngs
from repro.utils.serialization import dump_json, load_json, to_jsonable


class TestRng:
    def test_seeded_rng_reproducible(self):
        assert seeded_rng(5).integers(1000) == seeded_rng(5).integers(1000)

    def test_passthrough_generator(self):
        generator = np.random.default_rng(0)
        assert seeded_rng(generator) is generator

    def test_spawn_rngs_independent_and_reproducible(self):
        first = [r.integers(1000) for r in spawn_rngs(7, 3)]
        second = [r.integers(1000) for r in spawn_rngs(7, 3)]
        assert first == second
        assert len(set(first)) > 1

    def test_spawn_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1.0)
        check_positive("x", 0.0, allow_zero=True)
        with pytest.raises(ValueError):
            check_positive("x", 0.0)
        with pytest.raises(ValueError):
            check_positive("x", -1.0, allow_zero=True)

    def test_check_probability(self):
        check_probability("p", 0.5)
        with pytest.raises(ValueError):
            check_probability("p", 1.5)

    def test_check_in_options(self):
        check_in_options("mode", "a", ["a", "b"])
        with pytest.raises(ValueError):
            check_in_options("mode", "c", ["a", "b"])


class TestSerialization:
    def test_to_jsonable_handles_numpy_sets_dataclasses(self):
        @dataclasses.dataclass
        class Point:
            x: int
            values: np.ndarray

        payload = to_jsonable({"point": Point(1, np.array([1.5, 2.5])), "tags": {"b", "a"}, "n": np.int64(3)})
        assert payload["point"]["values"] == [1.5, 2.5]
        assert payload["tags"] == ["a", "b"]
        assert payload["n"] == 3

    def test_dump_and_load_roundtrip(self, tmp_path):
        path = dump_json({"a": np.float64(1.5)}, tmp_path / "sub" / "data.json")
        assert load_json(path) == {"a": 1.5}
