"""Tests for configuration, prompting, persistence, and pipeline components."""

import numpy as np
import pytest

from repro.core import (
    DPOAFPipeline,
    conservative_driving_model,
    llama2_chat_prompt,
    load_model,
    paper_scale_config,
    pruned_driving_model,
    quick_pipeline_config,
    save_model,
    steps_prompt,
    alignment_prompt,
)
from repro.core.pipeline import ModelEvaluation, TaskEvaluation
from repro.driving import core_specifications, task_by_name, training_tasks
from repro.driving.responses import response_templates
from repro.errors import TrainingError
from repro.lm import ModelConfig, Tokenizer, TransformerLM


class TestPrompting:
    def test_steps_prompt_matches_paper_format(self):
        assert steps_prompt("turn right at traffic light").startswith('Steps for "turn right at traffic light"')

    def test_alignment_prompt_lists_vocabulary(self):
        prompt = alignment_prompt(["step one"], ["green_traffic_light"], ["stop"])
        assert "green_traffic_light" in prompt and "stop" in prompt and "1. step one" in prompt

    def test_llama2_wrapper_tokens(self):
        prompt = llama2_chat_prompt("Steps for \"turn right\":")
        assert prompt.startswith("<s>[INST]") and "<<SYS>>" in prompt and prompt.endswith("[/INST]")


class TestSystemModelHelpers:
    def test_conservative_model_is_complete(self):
        model = conservative_driving_model(["green_traffic_light", "car_from_left"])
        assert model.num_states == 4
        assert model.num_transitions == 16

    def test_pruned_model_removes_isolated_states(self):
        model = pruned_driving_model(
            ["green_traffic_light", "car_from_left"],
            lambda a, b: a != b and len(a) <= 1 and len(b) <= 1,
        )
        # The {green, car} state has no allowed transition, so Algorithm 1 prunes it.
        assert model.num_states == 3


class TestCheckpoints:
    def test_save_and_load_roundtrip(self, tmp_path):
        tokenizer = Tokenizer.fit(["turn right at the light"])
        model = TransformerLM(ModelConfig(vocab_size=tokenizer.vocab_size, max_seq_len=16, dim=8, num_heads=2, num_layers=1, hidden_dim=16), seed=0)
        save_model(model, tokenizer, tmp_path / "ckpt")
        loaded_model, loaded_tokenizer = load_model(tmp_path / "ckpt")
        tokens = np.array([tokenizer.encode("turn right", add_bos=True)])
        mask = np.ones((1, tokens.shape[1] - 1), dtype=np.float32)
        assert np.allclose(model.sequence_log_probs(tokens, mask), loaded_model.sequence_log_probs(tokens, mask), atol=1e-5)
        assert loaded_tokenizer.vocab_size == tokenizer.vocab_size

    def test_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(TrainingError):
            load_model(tmp_path / "nowhere")


class TestEvaluationContainers:
    def test_task_and_model_evaluation_aggregation(self):
        evaluation = ModelEvaluation(
            per_task=[
                TaskEvaluation(task="a", split="train", num_specifications=15, satisfied_counts=[15, 13]),
                TaskEvaluation(task="b", split="validation", num_specifications=15, satisfied_counts=[9]),
            ]
        )
        assert evaluation.mean_satisfied("train") == pytest.approx(14.0)
        assert evaluation.mean_satisfied("validation") == pytest.approx(9.0)
        assert 0.0 < evaluation.satisfaction_ratio() < 1.0
        assert ModelEvaluation().satisfaction_ratio() == 0.0


class TestPipelinePieces:
    @pytest.fixture(scope="class")
    def pipeline(self):
        with DPOAFPipeline(quick_pipeline_config(seed=0), specifications=core_specifications()) as pipeline:
            yield pipeline

    def test_configs_scale(self):
        quick = quick_pipeline_config()
        paper = paper_scale_config()
        assert quick.pretrain.num_steps < paper.pretrain.num_steps
        assert quick.dpo.num_epochs < paper.dpo.num_epochs

    def test_score_response_orders_categories(self, pipeline):
        task = task_by_name("turn_right_traffic_light")
        good = pipeline.score_response(task, response_templates(task.name, "compliant")[0])
        bad = pipeline.score_response(task, response_templates(task.name, "flawed")[0])
        vague = pipeline.score_response(task, "1. Just drive nicely.")
        assert good > bad >= vague

    def test_task_model_is_cached(self, pipeline):
        task = task_by_name("turn_right_traffic_light")
        assert pipeline.task_model(task) is pipeline.task_model(task)

    def test_augment_with_templates_adds_pairs(self, pipeline):
        pairs = pipeline.augment_with_templates([], per_task=2)
        assert len(pairs) >= 2 * len(training_tasks())
        assert all(pair.chosen_score >= pair.rejected_score for pair in pairs)

    def test_finetune_requires_pairs(self, pipeline):
        tokenizer = Tokenizer.fit(["x"])
        model = TransformerLM(ModelConfig(vocab_size=tokenizer.vocab_size, max_seq_len=8, dim=8, num_heads=2, num_layers=1, hidden_dim=16))
        with pytest.raises(TrainingError):
            pipeline.finetune(model, tokenizer, [])

    def test_evaluate_model_honors_explicit_zero_samples(self, pipeline):
        """num_samples=0 means sample nothing — it must not silently fall back
        to the config default (falsy-`or` bug)."""
        tokenizer = Tokenizer.fit(["x"])
        model = TransformerLM(ModelConfig(vocab_size=tokenizer.vocab_size, max_seq_len=8, dim=8, num_heads=2, num_layers=1, hidden_dim=16))
        evaluation = pipeline.evaluate_model(model, tokenizer, num_samples=0)
        assert evaluation.per_task
        assert all(t.satisfied_counts == [] for t in evaluation.per_task)
        assert evaluation.satisfaction_ratio() == 0.0


def _pipeline_fingerprint(result):
    """Everything downstream of sampling, reduced to comparable values."""
    return {
        "pairs": [
            (p.prompt, p.chosen, p.rejected, p.chosen_score, p.rejected_score)
            for p in result.preference_pairs
        ],
        "before": [tuple(t.satisfied_counts) for t in result.before_evaluation.per_task],
        "after": [tuple(t.satisfied_counts) for t in result.after_evaluation.per_task],
        "losses": tuple(result.dpo_result.history.losses),
    }


class TestBatchedSamplingParity:
    """PipelineConfig.batched_sampling must be invisible in the outputs: the
    batched frontier and the serial per-task loop draw the same per-lane RNG
    streams, so pairs, losses and evaluations are bitwise-identical — and
    identical again across every serving backend."""

    TASKS = 2  # keep the process-backend run affordable

    def _run(self, *, batched: bool, backend: str = "serial"):
        import dataclasses

        from repro.serving import ServingConfig

        config = dataclasses.replace(
            quick_pipeline_config(seed=0),
            batched_sampling=batched,
            serving=ServingConfig(backend=backend, max_workers=2),
        )
        with DPOAFPipeline(
            config,
            specifications=core_specifications(),
            tasks=training_tasks()[: self.TASKS],
            validation=(),
        ) as pipeline:
            return _pipeline_fingerprint(pipeline.run())

    def test_batched_and_serial_sampling_agree(self):
        assert self._run(batched=True) == self._run(batched=False)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_batched_sampling_agrees_across_backends(self, backend):
        assert self._run(batched=True, backend=backend) == self._run(
            batched=True, backend="serial"
        )
