"""Compaction / eviction tests for the shared cache directory.

The contract under test: :meth:`CacheDirectory.compact` trims each shard to
its *newest* entries, evicts whole shards least-recently-written first under
a byte budget, sweeps the lock/tmp litter ``store`` can leave behind, and
never mistakes a lock or tmp file for a shard — and ``FeedbackService.flush``
runs it automatically when the ``ServingConfig`` bounds are set.
"""

import os

import pytest

from repro.core.config import FeedbackConfig
from repro.driving import core_specifications, response_templates, task_by_name
from repro.serving import (
    CacheDirectory,
    FeedbackCache,
    FeedbackJob,
    FeedbackService,
    ServingConfig,
)


def _store_numbered_shard(directory: CacheDirectory, fingerprint: str, count: int) -> None:
    cache = FeedbackCache()
    for index in range(count):
        cache.put(f"{fingerprint}-key-{index}", index)
    directory.store(fingerprint, cache)


class TestShardTrimming:
    def test_trim_keeps_newest_entries(self, tmp_path):
        """Eviction order inside a shard: oldest-written entries go first."""
        directory = CacheDirectory(tmp_path)
        _store_numbered_shard(directory, "fp", 10)
        report = directory.compact(max_entries=3)
        assert report.trimmed_shards == 1
        survivors = dict(directory.shard_entries("fp"))
        assert survivors == {f"fp-key-{i}": i for i in (7, 8, 9)}

    def test_trim_is_idempotent_under_the_bound(self, tmp_path):
        directory = CacheDirectory(tmp_path)
        _store_numbered_shard(directory, "fp", 3)
        assert directory.compact(max_entries=5).trimmed_shards == 0
        assert len(directory.shard_entries("fp")) == 3

    def test_trimmed_shard_still_warm_starts(self, tmp_path):
        directory = CacheDirectory(tmp_path)
        _store_numbered_shard(directory, "fp", 8)
        directory.compact(max_entries=4)
        loaded = directory.load("fp")
        assert len(loaded) == 4 and loaded.get("fp-key-7") == 7


class TestShardEviction:
    def test_evicts_least_recently_written_shards_first(self, tmp_path):
        directory = CacheDirectory(tmp_path)
        for index in range(4):
            _store_numbered_shard(directory, f"fp{index}", 10)
            # Deterministic write order regardless of filesystem timestamp
            # granularity.
            stamp = 1_000_000 + index
            os.utime(directory.shard_path(f"fp{index}"), (stamp, stamp))
        shard_size = directory.shard_path("fp0").stat().st_size
        report = directory.compact(max_bytes=2 * shard_size)
        assert report.evicted_shards == 2
        assert not directory.shard_path("fp0").exists()
        assert not directory.shard_path("fp1").exists()
        assert directory.shard_entries("fp2") and directory.shard_entries("fp3")
        assert report.total_bytes <= 2 * shard_size

    def test_eviction_leaves_the_lock_for_the_graced_sweep(self, tmp_path):
        """The shard goes at once; its lock only after the grace window, so a
        store() that still holds the flock is never raced out of exclusion."""
        directory = CacheDirectory(tmp_path)
        _store_numbered_shard(directory, "fp", 5)
        shard = directory.shard_path("fp")
        lock = shard.with_name(f"{shard.name}.lock")
        assert lock.exists()  # store created it
        directory.compact(max_bytes=1)
        assert not shard.exists()
        assert lock.exists(), "a fresh lock must survive eviction (it may be held)"
        os.utime(lock, (1, 1))
        report = directory.compact()
        assert report.removed_lock_files == 1 and not lock.exists()


class TestLitterSweep:
    def test_orphaned_lock_files_are_removed_after_grace(self, tmp_path):
        directory = CacheDirectory(tmp_path)
        _store_numbered_shard(directory, "fp", 2)
        live_lock = directory.shard_path("fp").with_name(
            f"{directory.shard_path('fp').name}.lock"
        )
        stale_orphan = tmp_path / "deadbeef00000000.json.lock"
        stale_orphan.write_text("")
        os.utime(stale_orphan, (1, 1))
        # A *fresh* shardless lock may belong to an in-flight store() for a
        # brand-new fingerprint — it must survive the sweep.
        fresh_orphan = tmp_path / "cafebabe00000000.json.lock"
        fresh_orphan.write_text("")
        report = directory.compact()
        assert report.removed_lock_files == 1
        assert not stale_orphan.exists()
        assert fresh_orphan.exists() and live_lock.exists()

    def test_stale_tmp_files_are_removed_fresh_ones_kept(self, tmp_path):
        directory = CacheDirectory(tmp_path)
        stale = tmp_path / "abcd.json.tmp.111"
        stale.write_text("{")
        os.utime(stale, (1, 1))
        fresh = tmp_path / "abcd.json.tmp.222"
        fresh.write_text("{")
        report = directory.compact()
        assert report.removed_tmp_files == 1
        assert not stale.exists() and fresh.exists()

    def test_lock_and_tmp_files_are_never_shards(self, tmp_path):
        directory = CacheDirectory(tmp_path)
        _store_numbered_shard(directory, "fp", 2)
        (tmp_path / "rogue.json.lock").write_text("not a shard")
        (tmp_path / "rogue.json.tmp.5").write_text("not a shard")
        names = [path.name for path in directory.shard_files()]
        assert names == [directory.shard_path("fp").name]
        # And compaction over the litter neither counts nor chokes on it.
        directory.compact(max_entries=1, max_bytes=10**9)


class TestConfiguredCompaction:
    def test_config_rejects_nonpositive_bounds(self):
        with pytest.raises(ValueError):
            ServingConfig(shared_cache_dir="x", shared_cache_max_entries=0)
        with pytest.raises(ValueError):
            ServingConfig(shared_cache_dir="x", shared_cache_max_bytes=-1)

    def test_config_rejects_bounds_without_directory(self):
        """A bound with nothing to bound must fail loudly, not be ignored."""
        with pytest.raises(ValueError):
            ServingConfig(shared_cache_max_entries=16)
        with pytest.raises(ValueError):
            ServingConfig(shared_cache_max_bytes=1 << 20)

    def test_flush_compacts_when_bounded(self, tmp_path):
        task = task_by_name("enter_roundabout")
        responses = list(response_templates(task.name, "compliant"))
        responses += list(response_templates(task.name, "flawed"))
        config = ServingConfig(
            shared_cache_dir=str(tmp_path / "shared"), shared_cache_max_entries=2
        )
        service = FeedbackService(core_specifications(), feedback=FeedbackConfig(), config=config)
        scores = service.score_responses(task, responses)
        assert service.flush()
        directory = CacheDirectory(tmp_path / "shared")
        assert len(directory.shard_entries(service._fingerprint)) == 2

        # A warm restart over the trimmed shard still serves correct scores.
        warmed = FeedbackService(core_specifications(), feedback=FeedbackConfig(), config=config)
        assert warmed.metrics.warm_start_entries == 2
        assert warmed.score_responses(task, responses) == scores

    def test_flush_without_bounds_never_compacts(self, tmp_path):
        task = task_by_name("enter_roundabout")
        responses = list(response_templates(task.name, "compliant"))
        config = ServingConfig(shared_cache_dir=str(tmp_path / "shared"))
        service = FeedbackService(core_specifications(), feedback=FeedbackConfig(), config=config)
        service.score_responses(task, responses)
        service.flush()
        directory = CacheDirectory(tmp_path / "shared")
        assert len(directory.shard_entries(service._fingerprint)) == len(responses)

    def test_byte_bound_keeps_directory_under_limit(self, tmp_path):
        directory = CacheDirectory(tmp_path)
        for index in range(6):
            _store_numbered_shard(directory, f"fp{index}", 50)
            stamp = 2_000_000 + index
            os.utime(directory.shard_path(f"fp{index}"), (stamp, stamp))
        budget = 3 * directory.shard_path("fp0").stat().st_size
        report = directory.compact(max_bytes=budget)
        assert report.total_bytes <= budget
        assert sum(path.stat().st_size for path in directory.shard_files()) <= budget


class TestCrossProcessCompactionLock:
    """Two processes compacting one ``shared_cache_dir`` must coordinate:
    the directory-level ``compact.lock`` admits one compactor at a time,
    and a lock left by a crashed process is taken over after it goes stale."""

    def test_held_lock_skips_compaction(self, tmp_path):
        directory = CacheDirectory(tmp_path)
        _store_numbered_shard(directory, "fp", 10)
        lock = tmp_path / CacheDirectory.COMPACT_LOCK_NAME
        lock.write_text("pid=12345 started=now\n")  # a live peer, mid-compaction
        report = directory.compact(max_entries=3)
        assert report.skipped is True
        assert report.trimmed_shards == 0
        assert len(directory.shard_entries("fp")) == 10, "a skipped pass must not touch shards"
        assert lock.exists(), "a held lock must never be stolen while fresh"

    def test_stale_lock_is_taken_over(self, tmp_path):
        directory = CacheDirectory(tmp_path)
        _store_numbered_shard(directory, "fp", 10)
        lock = tmp_path / CacheDirectory.COMPACT_LOCK_NAME
        lock.write_text("pid=12345 started=long-ago\n")
        os.utime(lock, (1_000_000, 1_000_000))  # crashed holder: ancient mtime
        report = directory.compact(max_entries=3, stale_lock_seconds=60)
        assert report.skipped is False
        assert report.trimmed_shards == 1
        assert len(directory.shard_entries("fp")) == 3
        assert not lock.exists(), "the winner must release the taken-over lock"

    def test_release_never_deletes_a_lock_owned_by_another_process(self, tmp_path):
        """Regression: a holder whose lock was taken over (it outlived the
        stale timeout) must not unlink the new owner's lock on release."""
        directory = CacheDirectory(tmp_path)
        assert directory._try_acquire_compaction_lock(60.0)
        lock = tmp_path / CacheDirectory.COMPACT_LOCK_NAME
        lock.write_text("pid=999999\n")  # a takeover re-owned the lock
        directory._release_compaction_lock()
        assert lock.exists(), "release must leave another owner's lock alone"
        lock.unlink()

    def test_compaction_renews_its_lease_while_running(self, tmp_path):
        directory = CacheDirectory(tmp_path)
        assert directory._try_acquire_compaction_lock(60.0)
        lock = tmp_path / CacheDirectory.COMPACT_LOCK_NAME
        os.utime(lock, (1_000_000, 1_000_000))  # pretend the work ran long
        directory._touch_compaction_lock()
        import time as _time

        assert _time.time() - lock.stat().st_mtime < 60, "touch must refresh the lease"
        directory._release_compaction_lock()
        assert not lock.exists()

    def test_takeover_backs_off_from_a_fresh_lock(self, tmp_path):
        """The rename-aside claim re-checks freshness: a live lock that
        replaced the stale one between stat and rename is restored."""
        directory = CacheDirectory(tmp_path)
        lock = tmp_path / CacheDirectory.COMPACT_LOCK_NAME
        lock.write_text("pid=424242\n")  # fresh mtime: a live holder
        assert directory._takeover_stale_lock(lock, stale_after=3600) is False
        assert lock.exists(), "a live holder's lock must be restored"
        assert lock.read_text() == "pid=424242\n"
        assert not list(tmp_path.glob(f"{CacheDirectory.COMPACT_LOCK_NAME}.stale.*"))

    def test_compaction_releases_its_lock(self, tmp_path):
        directory = CacheDirectory(tmp_path)
        _store_numbered_shard(directory, "fp", 10)
        directory.compact(max_entries=3)
        assert not (tmp_path / CacheDirectory.COMPACT_LOCK_NAME).exists()

    def test_two_live_processes_one_compactor(self, tmp_path):
        """A real second process holds the lock while this one tries to
        compact; once the peer exits (lock released), compaction proceeds."""
        import subprocess
        import sys

        directory = CacheDirectory(tmp_path)
        _store_numbered_shard(directory, "fp", 10)
        child = subprocess.Popen(
            [
                sys.executable,
                "-c",
                (
                    "import sys\n"
                    "from repro.serving import CacheDirectory\n"
                    "directory = CacheDirectory(sys.argv[1])\n"
                    "assert directory._try_acquire_compaction_lock(60.0)\n"
                    "print('held', flush=True)\n"
                    "sys.stdin.readline()  # hold until the parent says so\n"
                    "directory._release_compaction_lock()\n"
                    "print('released', flush=True)\n"
                ),
                str(tmp_path),
            ],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
            env={**os.environ, "PYTHONPATH": str(_repo_src())},
        )
        try:
            assert child.stdout.readline().strip() == "held"
            blocked = directory.compact(max_entries=3, stale_lock_seconds=60)
            assert blocked.skipped is True
            assert len(directory.shard_entries("fp")) == 10

            child.stdin.write("done\n")
            child.stdin.flush()
            assert child.stdout.readline().strip() == "released"
            child.wait(timeout=10)

            report = directory.compact(max_entries=3, stale_lock_seconds=60)
            assert report.skipped is False
            assert report.trimmed_shards == 1
            assert len(directory.shard_entries("fp")) == 3
        finally:
            if child.poll() is None:
                child.kill()
                child.wait(timeout=10)


def _repo_src():
    from pathlib import Path

    return Path(__file__).resolve().parents[2] / "src"
