"""Regression tests for fixes surfaced by the repro-lint baseline sweep.

Each test pins a behaviour the linter's first run over the tree flagged and
the sweep fixed; the corresponding rule now keeps it fixed.
"""

from __future__ import annotations

import json

from repro.serving.scheduler import FeedbackJob, FeedbackService


def test_prepare_scenarios_runs_in_sorted_order():
    """`_prepare_scenarios` iterated a set — preparation order (and any RNG
    it consumes) depended on hash order.  It must be sorted."""

    class RecordingScorer:
        def __init__(self):
            self.prepared = []

        def prepare(self, scenario):
            self.prepared.append(scenario)

    service = object.__new__(FeedbackService)
    service._scorer = RecordingScorer()
    jobs = [
        FeedbackJob(task=f"t{i}", scenario=name, response="r")
        for i, name in enumerate(["zebra", "alpha", "mid", "alpha", "zebra"])
    ]
    service._prepare_scenarios(jobs)
    assert service._scorer.prepared == ["alpha", "mid", "zebra"]


def test_scenario_digest_memo_is_thread_safe(monkeypatch):
    """`scenario_digest` mutated its memo off-lock while the batch path
    mutated it under `_batch_lock` — concurrent public callers could race the
    check-then-insert.  The memo now has its own lock."""
    import threading

    import repro.serving.scheduler as scheduler_module

    calls = []

    def fake_digest(model):
        calls.append(model)
        return f"digest-{model}"

    monkeypatch.setattr(scheduler_module, "model_digest", fake_digest)

    class Feedback:
        use_empirical = False

    service = object.__new__(FeedbackService)
    service.feedback = Feedback()
    service._digests = {}
    service._digest_lock = threading.Lock()
    service.scenario_model = lambda scenario: scenario

    barrier = threading.Barrier(8)
    results = []

    def worker():
        barrier.wait()
        results.append(service.scenario_digest("intersection"))

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert results == ["digest-intersection"] * 8
    # The lock serialises the check-then-insert: one computation, not eight.
    assert len(calls) == 1


def test_save_model_writes_config_and_tokenizer_atomically(tmp_path):
    """`save_model` wrote config/tokenizer with bare write_text — a crash
    mid-write left a truncated JSON next to already-replaced weights."""
    from repro.core.checkpoints import load_model, save_model
    from repro.lm.tokenizer import Tokenizer
    from repro.lm.transformer import ModelConfig, TransformerLM

    tokenizer = Tokenizer.fit(["a b c d"])
    config = ModelConfig(
        vocab_size=tokenizer.vocab_size, max_seq_len=16, dim=8, num_heads=2, num_layers=1, hidden_dim=16
    )
    model = TransformerLM(config, seed=0)
    save_model(model, tokenizer, tmp_path / "ckpt")
    # Saving twice over the same checkpoint must go through tmp + replace:
    # no tmp litter, and the artifacts stay valid JSON.
    save_model(model, tokenizer, tmp_path / "ckpt")
    assert list(tmp_path.rglob("*.tmp.*")) == []
    json.loads((tmp_path / "ckpt" / "config.json").read_text())
    json.loads((tmp_path / "ckpt" / "tokenizer.json").read_text())
    load_model(tmp_path / "ckpt")
