"""Streaming pair construction, submit_batch back-pressure, shared Dispatcher.

The contracts under test:

* pairs built from ``as_completed`` streaming are identical — same pair list,
  bitwise-identical scores — to pairs built from the blocking ``score_batch``
  path, on every backend (possible because ``rank_to_pairs`` is
  order-independent);
* ``submit_batch`` blocks at ``ServingConfig.max_inflight_batches`` /
  ``max_inflight_jobs`` and unblocks as the dispatcher drains, with the
  blocked time telemetered;
* one :class:`Dispatcher` can serve several :class:`FeedbackService`
  instances, and closing a service never tears down a shared dispatcher.
"""

import threading

import pytest

from repro.core.config import FeedbackConfig
from repro.driving import core_specifications, response_templates, task_by_name
from repro.feedback import rank_to_pairs
from repro.lm import format_prompt
from repro.serving import (
    Dispatcher,
    FeedbackJob,
    FeedbackService,
    ServingConfig,
    as_completed,
)

TASK_NAMES = ("turn_right_traffic_light", "enter_roundabout", "merge_onto_highway")


def _service(backend: str = "serial", dispatcher=None, **config_kwargs) -> FeedbackService:
    return FeedbackService(
        core_specifications(),
        feedback=FeedbackConfig(),
        config=ServingConfig(backend=backend, max_workers=2, **config_kwargs),
        seed=0,
        dispatcher=dispatcher,
    )


def _reference_scores(jobs) -> list:
    return FeedbackService(
        core_specifications(), feedback=FeedbackConfig(), seed=0, config=ServingConfig(enabled=False)
    ).score_batch(jobs)


def _task_batches() -> list:
    """``(task, responses)`` per task — the shape pair collection submits."""
    batches = []
    for name in TASK_NAMES:
        task = task_by_name(name)
        responses = list(response_templates(name, "compliant"))
        responses += list(response_templates(name, "flawed"))[:2]
        batches.append((task, responses))
    return batches


def _distinct_miss_batches(count: int, size: int = 3) -> list:
    """``count`` batches of canonically distinct, parseable responses.

    Every response is unique across all batches, so each batch is pure cache
    misses — each must actually reach the (gateable) scorer.
    """
    task = task_by_name("enter_roundabout")
    base = response_templates(task.name, "compliant")[0].rstrip("\n")
    steps = len(base.splitlines())
    batches, counter = [], 0
    for _ in range(count):
        jobs = []
        for _ in range(size):
            suffix = "".join(
                f"\n{steps + 1 + extra}. If there is a pedestrian, stop."
                for extra in range(counter + 1)
            )
            counter += 1
            jobs.append(FeedbackJob(task=task.name, scenario=task.scenario, response=base + suffix))
        batches.append(jobs)
    return batches


class GatedScorer:
    """Wraps a service's scorer so verification blocks until the test allows it."""

    def __init__(self, service):
        self.gate = threading.Event()
        self._original = service._scorer.score
        service._scorer.score = self._gated

    def _gated(self, *args, **kwargs):
        assert self.gate.wait(timeout=30), "test never opened the scoring gate"
        return self._original(*args, **kwargs)


class TestStreamingPairConstruction:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_streamed_pairs_match_blocking_pairs(self, backend):
        """Acceptance: as_completed streaming yields the same pair lists —
        same pair set, bitwise-identical scores — as the blocking path."""
        batches = _task_batches()

        blocking = []
        with _service(backend) as sync:
            for task, responses in batches:
                scores = sync.score_responses(task, responses)
                blocking.append(
                    rank_to_pairs(format_prompt(task), responses, scores, task=task.name)
                )

        with _service(backend) as service:
            pending = [
                (task, responses, service.submit_responses(task, responses))
                for task, responses in batches
            ]
            index_of = {handle: i for i, (_, _, handle) in enumerate(pending)}
            streamed: list = [None] * len(pending)
            for handle in as_completed([handle for _, _, handle in pending]):
                i = index_of[handle]
                task, responses, _ = pending[i]
                streamed[i] = rank_to_pairs(
                    format_prompt(task), responses, handle.result(), task=task.name
                )

        assert streamed == blocking, backend

    def test_pipeline_streaming_matches_task_order_assembly(self):
        """collect_preference_pairs streams completions yet must return the
        same list a task-ordered drain would have produced."""
        from repro.core import DPOAFPipeline
        from repro.core.config import quick_pipeline_config
        from repro.driving import training_tasks

        with DPOAFPipeline(
            quick_pipeline_config(seed=0),
            specifications=core_specifications(),
            tasks=training_tasks()[:2],
            validation=(),
        ) as pipeline:
            augmented = pipeline.augment_with_templates([], per_task=3)
            # Reference: the same template workload drained strictly in task
            # order through the synchronous API.
            expected = []
            from repro.driving.responses import VAGUE_RESPONSES, response_templates as templates

            for task in pipeline.tasks:
                prompt = format_prompt(task)
                candidates = (
                    list(templates(task.name, "compliant"))
                    + list(templates(task.name, "flawed"))[:2]
                    + [VAGUE_RESPONSES[0]]
                )
                scores = pipeline.serving.score_responses(task, candidates)
                expected.extend(rank_to_pairs(prompt, candidates, scores, task=task.name)[:3])
        assert augmented == expected


class TestBackPressure:
    def test_submit_blocks_at_max_inflight_batches_and_unblocks_on_drain(self):
        """Acceptance: submit_batch provably blocks at the configured bound."""
        batches = _distinct_miss_batches(3)
        service = _service("serial", max_inflight_batches=2)
        gated = GatedScorer(service)
        try:
            first = service.submit_batch(batches[0])
            second = service.submit_batch(batches[1])

            blocked_handle: dict = {}

            def third_submission():
                blocked_handle["handle"] = service.submit_batch(batches[2])

            producer = threading.Thread(target=third_submission, daemon=True)
            producer.start()
            producer.join(timeout=1.0)
            # Two batches are in flight and verification is gated shut, so
            # the third submission must still be blocked in _admit.
            assert producer.is_alive(), "submit_batch did not block at max_inflight_batches"
            assert "handle" not in blocked_handle

            gated.gate.set()  # drain: completions release the bound
            producer.join(timeout=30)
            assert not producer.is_alive(), "submit_batch never unblocked after the drain"
            assert blocked_handle["handle"].result() == _reference_scores(batches[2])
            assert first.result() == _reference_scores(batches[0])
            assert second.result() == _reference_scores(batches[1])
            assert service.metrics.backpressure_waits >= 1
            assert service.metrics.backpressure_seconds > 0
        finally:
            gated.gate.set()
            service.close()

    def test_max_inflight_jobs_blocks_job_heavy_producers(self):
        batches = _distinct_miss_batches(2, size=4)
        service = _service("serial", max_inflight_jobs=4)
        gated = GatedScorer(service)
        try:
            service.submit_batch(batches[0])  # 4 jobs: fills the bound

            def second_submission():
                service.submit_batch(batches[1])

            producer = threading.Thread(target=second_submission, daemon=True)
            producer.start()
            producer.join(timeout=1.0)
            assert producer.is_alive(), "submit_batch did not block at max_inflight_jobs"
            gated.gate.set()
            producer.join(timeout=30)
            assert not producer.is_alive()
        finally:
            gated.gate.set()
            service.close()

    def test_oversized_batch_is_admitted_when_idle(self):
        """A batch larger than max_inflight_jobs must run (delayed, never
        deadlocked) once nothing is in flight."""
        jobs = [job for batch in _distinct_miss_batches(2) for job in batch]
        with _service("serial", max_inflight_jobs=2) as service:
            handle = service.submit_batch(jobs)  # len(jobs) > 2; must not block
            assert handle.result() == _reference_scores(jobs)

    def test_unbounded_submission_records_no_backpressure(self):
        batches = _distinct_miss_batches(3)
        with _service("serial") as service:
            handles = [service.submit_batch(batch) for batch in batches]
            for handle in handles:
                handle.result()
            assert service.metrics.backpressure_waits == 0
            assert service.metrics.backpressure_seconds == 0.0
            snapshot = service.metrics.snapshot()
        assert snapshot["backpressure_waits"] == 0
        assert "backpressure_seconds" in snapshot

    def test_bounded_scores_match_unbounded_scores(self):
        batches = _distinct_miss_batches(4)
        expected = [_reference_scores(batch) for batch in batches]
        with _service("serial", max_inflight_batches=1) as service:
            results = [service.submit_batch(batch).result() for batch in batches]
        assert results == expected

    def test_config_rejects_nonpositive_bounds(self):
        with pytest.raises(ValueError):
            ServingConfig(max_inflight_batches=0)
        with pytest.raises(ValueError):
            ServingConfig(max_inflight_jobs=-1)

    def test_score_batch_async_respects_backpressure(self):
        """The asyncio adapter must yield, not wedge the loop, while blocked."""
        import asyncio

        batches = _distinct_miss_batches(3)
        expected = [_reference_scores(batch) for batch in batches]
        with _service("serial", max_inflight_batches=1) as service:

            async def run():
                return await asyncio.gather(
                    *(service.score_batch_async(batch) for batch in batches)
                )

            results = asyncio.run(run())
        assert sorted(map(tuple, results)) == sorted(map(tuple, expected))


class TestSharedDispatcher:
    def test_two_services_share_one_dispatcher(self):
        batches = _task_batches()
        with Dispatcher() as dispatcher:
            first = _service("serial", dispatcher=dispatcher)
            second = _service("serial", dispatcher=dispatcher)
            assert dispatcher.active_services == 2

            task_a, responses_a = batches[0]
            task_b, responses_b = batches[1]
            handle_a = first.submit_responses(task_a, responses_a)
            handle_b = second.submit_responses(task_b, responses_b)
            jobs_a = [
                FeedbackJob(task=task_a.name, scenario=task_a.scenario, response=r)
                for r in responses_a
            ]
            jobs_b = [
                FeedbackJob(task=task_b.name, scenario=task_b.scenario, response=r)
                for r in responses_b
            ]
            assert handle_a.result() == _reference_scores(jobs_a)
            assert handle_b.result() == _reference_scores(jobs_b)

            # Closing one service drains only its own work; the dispatcher
            # keeps serving the other.
            first.close()
            assert dispatcher.active_services == 1
            again = second.submit_responses(task_b, responses_b)
            assert again.result() == _reference_scores(jobs_b)
            second.close()
            assert dispatcher.active_services == 0
        assert dispatcher.closed

    def test_closed_dispatcher_rejects_submissions_and_registration(self):
        dispatcher = Dispatcher()
        dispatcher.close()
        with pytest.raises(RuntimeError):
            dispatcher.submit(lambda: None)
        with pytest.raises(RuntimeError):
            _service("serial", dispatcher=dispatcher)

    def test_private_dispatcher_closes_with_its_service(self):
        service = _service("serial")
        handle = service.submit_batch(_distinct_miss_batches(1)[0])
        dispatcher = service._dispatcher
        assert dispatcher is not None and service._owns_dispatcher
        service.close()
        assert handle.done()
        assert dispatcher.closed

    def test_pipeline_shares_its_dispatcher_with_the_service(self):
        from repro.core import DPOAFPipeline
        from repro.core.config import quick_pipeline_config
        from repro.driving import training_tasks

        with DPOAFPipeline(
            quick_pipeline_config(seed=0),
            specifications=core_specifications(),
            tasks=training_tasks()[:1],
            validation=(),
        ) as pipeline:
            assert pipeline.serving._dispatcher is pipeline.dispatcher
            assert pipeline.dispatcher.active_services == 1
            assert pipeline.augment_with_templates([], per_task=2)
        assert pipeline.dispatcher.closed
