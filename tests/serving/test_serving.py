"""Tests for the batched feedback-serving subsystem (cache, dedup, scheduler)."""

import pytest

from repro.core.config import FeedbackConfig
from repro.driving import core_specifications, response_templates, task_by_name
from repro.feedback import EmpiricalEvaluator, FormalVerifier
from repro.glm2fsa import build_controller_from_text
from repro.serving import (
    FeedbackCache,
    FeedbackJob,
    FeedbackService,
    ServingConfig,
    cache_key,
    canonicalize_response,
    dedupe_responses,
    feedback_fingerprint,
)
from repro.sim import SimulationGrounding


class TestCanonicalization:
    def test_whitespace_variants_collapse(self):
        base = "1. Observe the traffic light.\n2. If there is a pedestrian, stop."
        variants = [
            base,
            base.replace("\n", "\r\n"),
            "  1. Observe the traffic light.  \n\n2. If there is a pedestrian, stop.\n",
            base + "\n\n",
        ]
        forms = {canonicalize_response(v) for v in variants}
        assert len(forms) == 1

    def test_internal_whitespace_is_preserved(self):
        # The alignment lexicon is sensitive to spacing inside a line, so the
        # canonical form must not merge these (they could score differently).
        a = canonicalize_response("1. If there is no car  from the left, turn right.")
        b = canonicalize_response("1. If there is no car from the left, turn right.")
        assert a != b

    def test_dedupe_assignment_reconstructs_batch(self):
        batch = ["r1", "r2", "r1\n", " r2 ", "r3", "r1"]
        unique, assignment = dedupe_responses(batch)
        assert unique == ["r1", "r2", "r3"]
        assert [unique[j] for j in assignment] == ["r1", "r2", "r1", "r2", "r3", "r1"]


class TestCacheKey:
    def test_key_is_stable(self):
        fp = feedback_fingerprint(FeedbackConfig(), core_specifications())
        assert cache_key("roundabout", "1. stop", fp) == cache_key("roundabout", "1. stop", fp)

    def test_key_separates_every_input(self):
        fp = feedback_fingerprint(FeedbackConfig(), core_specifications())
        base = cache_key("roundabout", "1. stop", fp)
        assert cache_key("highway_merge", "1. stop", fp) != base
        assert cache_key("roundabout", "1. go straight", fp) != base
        empirical_fp = feedback_fingerprint(FeedbackConfig(use_empirical=True), core_specifications())
        assert cache_key("roundabout", "1. stop", empirical_fp) != base

    def test_model_digest_invalidates_stale_entries(self, tmp_path):
        """An edited world model must not collide with a persisted cache."""
        from repro.driving import scenario_model

        def patched_builder(name):
            model = scenario_model(name)
            model.add_state("digest_probe", [])
            model.add_transition(model.states[0], "digest_probe")
            return model

        config = ServingConfig(persist_path=str(tmp_path / "cache.json"))
        original = FeedbackService(core_specifications(), feedback=FeedbackConfig(), config=config)
        job = FeedbackJob(task="t", scenario="roundabout", response="1. If there is a pedestrian, stop.")
        original.score_batch([job])
        original.flush()
        edited = FeedbackService(
            core_specifications(), feedback=FeedbackConfig(), config=config, model_builder=patched_builder
        )
        edited.score_batch([job])
        assert edited.metrics.cache_hits == 0 and edited.metrics.cache_misses == 1

    def test_fingerprint_covers_spec_set_and_seed(self):
        specs = core_specifications()
        fewer = {name: specs[name] for name in list(specs)[:2]}
        assert feedback_fingerprint(FeedbackConfig(), specs) != feedback_fingerprint(FeedbackConfig(), fewer)
        # The empirical seed changes traces, hence scores; the formal path ignores it.
        empirical = FeedbackConfig(use_empirical=True)
        assert feedback_fingerprint(empirical, specs, seed=0) != feedback_fingerprint(empirical, specs, seed=1)
        assert feedback_fingerprint(FeedbackConfig(), specs, seed=0) == feedback_fingerprint(FeedbackConfig(), specs, seed=1)


class TestFeedbackCache:
    def test_lru_eviction_order(self):
        cache = FeedbackCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1      # refreshes "a"; "b" is now LRU
        cache.put("c", 3)
        assert "b" not in cache and "a" in cache and "c" in cache
        stats = cache.stats()
        assert stats.evictions == 1 and stats.size == 2

    def test_hit_miss_counters(self):
        cache = FeedbackCache(max_entries=4)
        assert cache.get("missing") is None
        cache.put("k", 7)
        assert cache.get("k") == 7
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1 and stats.hit_rate == 0.5

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            FeedbackCache(max_entries=0)

    def test_persistence_roundtrip(self, tmp_path):
        cache = FeedbackCache(max_entries=8)
        cache.put("x", 3)
        cache.put("y", 0)
        path = cache.save(tmp_path / "cache.json")
        loaded = FeedbackCache.load(path)
        assert loaded.get("x") == 3 and loaded.get("y") == 0 and len(loaded) == 2

    def test_merge_reports_retained_not_adopted(self):
        """Keys `put` immediately evicts must not inflate the warm-start count."""
        cache = FeedbackCache(max_entries=2)
        retained = cache.merge([[f"k{i}", i] for i in range(5)])
        assert retained == 2 == len(cache)
        # Merging the survivors again adopts nothing new.
        assert cache.merge([["k3", 3], ["k4", 4]]) == 0

    def test_load_honors_explicit_zero_max_entries(self, tmp_path):
        """`max_entries=0` must surface the constructor's ValueError, not be
        silently replaced by the persisted default (falsy-`or` bug)."""
        cache = FeedbackCache(max_entries=8)
        cache.put("x", 1)
        path = cache.save(tmp_path / "cache.json")
        with pytest.raises(ValueError):
            FeedbackCache.load(path, max_entries=0)
        # A corrupt payload bound of 0 is likewise an error, not a fallback.
        import json

        payload = json.loads(path.read_text())
        payload["max_entries"] = 0
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError):
            FeedbackCache.load(path)
        assert FeedbackCache.load(path, max_entries=4).max_entries == 4


@pytest.fixture(scope="module")
def right_turn_task():
    return task_by_name("turn_right_traffic_light")


@pytest.fixture(scope="module")
def batch_responses(right_turn_task):
    compliant = response_templates(right_turn_task.name, "compliant")
    flawed = response_templates(right_turn_task.name, "flawed")
    # Duplicates and whitespace variants, as sampling produces them.
    return [compliant[0], flawed[0], compliant[0], compliant[0] + "\n", flawed[1], "1. Drive nicely."]


class TestFeedbackService:
    def test_cached_formal_score_matches_recomputation(self, right_turn_task):
        service = FeedbackService(core_specifications(), feedback=FeedbackConfig())
        response = response_templates(right_turn_task.name, "compliant")[0]
        first = service.score_response(right_turn_task, response)
        second = service.score_response(right_turn_task, response)
        verifier = FormalVerifier(core_specifications())
        direct = verifier.verify_response(right_turn_task.model(), response, task=right_turn_task.name)
        assert first == second == direct.num_satisfied
        assert service.cache.stats().hits == 1

    def test_cached_empirical_score_matches_recomputation(self, right_turn_task):
        feedback = FeedbackConfig(use_empirical=True, empirical_traces=5)
        service = FeedbackService(core_specifications(), feedback=feedback, seed=0)
        response = response_templates(right_turn_task.name, "compliant")[0]
        first = service.score_response(right_turn_task, response)
        second = service.score_response(right_turn_task, response)
        evaluator = EmpiricalEvaluator(
            core_specifications(),
            SimulationGrounding(right_turn_task.scenario),
            threshold=feedback.empirical_threshold,
        )
        controller = build_controller_from_text(
            response, task=right_turn_task.name, wait_action=feedback.wait_action
        )
        direct = evaluator.evaluate_controller(controller, num_traces=5, seed=0)
        assert first == second == direct.num_satisfied
        assert service.cache.stats().hits == 1

    def test_unparseable_response_scores_zero(self, right_turn_task):
        for feedback in (FeedbackConfig(), FeedbackConfig(use_empirical=True, empirical_traces=3)):
            service = FeedbackService(core_specifications(), feedback=feedback)
            assert service.score_response(right_turn_task, "Please drive safely out there.") == 0

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_batch_order_is_deterministic(self, right_turn_task, batch_responses, backend):
        config = ServingConfig(backend=backend, max_workers=3)
        service = FeedbackService(core_specifications(), feedback=FeedbackConfig(), config=config)
        batch_scores = service.score_responses(right_turn_task, batch_responses)
        reference = FeedbackService(
            core_specifications(), feedback=FeedbackConfig(), config=ServingConfig(enabled=False)
        )
        serial_scores = [reference.score_response(right_turn_task, r) for r in batch_responses]
        assert batch_scores == serial_scores
        # Duplicates (exact and whitespace-variant) resolved without re-verification.
        assert service.metrics.dedup_rate > 0

    def test_disabled_serving_skips_cache(self, right_turn_task):
        service = FeedbackService(
            core_specifications(), feedback=FeedbackConfig(), config=ServingConfig(enabled=False)
        )
        response = response_templates(right_turn_task.name, "compliant")[0]
        assert service.score_response(right_turn_task, response) == service.score_response(
            right_turn_task, response
        )
        assert len(service.cache) == 0
        assert service.metrics.hit_rate == 0.0

    def test_disabled_serving_records_no_cache_lookups(self, right_turn_task, batch_responses):
        """The reference path performs no lookups, so the telemetry must show
        none — not `misses=len(jobs)` pretending the cache was consulted."""
        service = FeedbackService(
            core_specifications(), feedback=FeedbackConfig(), config=ServingConfig(enabled=False)
        )
        service.score_responses(right_turn_task, batch_responses)
        snapshot = service.metrics.snapshot()
        assert snapshot["cache_hits"] == 0 and snapshot["cache_misses"] == 0
        assert snapshot["uncached_jobs"] == len(batch_responses)
        assert snapshot["hit_rate"] == 0.0 and snapshot["dedup_rate"] == 0.0

    def test_enabled_serving_records_no_uncached_jobs(self, right_turn_task, batch_responses):
        service = FeedbackService(core_specifications(), feedback=FeedbackConfig())
        service.score_responses(right_turn_task, batch_responses)
        snapshot = service.metrics.snapshot()
        assert snapshot["uncached_jobs"] == 0
        assert snapshot["cache_misses"] > 0

    def test_metrics_reset_clears_uncached_jobs(self):
        from repro.serving import ServingMetrics

        metrics = ServingMetrics()
        metrics.record_batch(jobs=3, unique=3, hits=0, misses=0, uncached=3, seconds=0.1)
        assert metrics.uncached_jobs == 3
        metrics.reset()
        assert metrics.uncached_jobs == 0 and metrics.snapshot()["uncached_jobs"] == 0

    def test_metrics_reset_clears_stage_seconds_in_place(self):
        """reset() must clear the live dict, not rebind it — a provider (or
        test) holding a reference keeps observing the same mapping."""
        from repro.serving import ServingMetrics

        metrics = ServingMetrics()
        metrics.record_stage("encode", 1.5)
        held = metrics.stage_seconds
        metrics.reset()
        assert held == {} and metrics.stage_seconds is held
        metrics.record_stage("encode", 0.5)
        assert held == {"encode": 0.5}

    def test_metrics_mutation_is_thread_safe(self):
        import threading

        from repro.serving import ServingMetrics

        metrics = ServingMetrics()

        def record():
            for _ in range(500):
                metrics.record_batch(jobs=1, unique=1, hits=0, misses=1, seconds=0.0)
                metrics.record_backpressure(0.001)
                metrics.record_stage("encode", 0.001)

        threads = [threading.Thread(target=record) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert metrics.jobs == 2000
        assert metrics.backpressure_waits == 2000
        assert metrics.stage_seconds["encode"] == pytest.approx(2.0)

    def test_evaluator_and_model_built_once_per_scenario(self, right_turn_task):
        service = FeedbackService(
            core_specifications(), feedback=FeedbackConfig(use_empirical=True, empirical_traces=3)
        )
        assert service.scenario_model(right_turn_task.scenario) is service.scenario_model(right_turn_task.scenario)
        assert service.evaluator(right_turn_task.scenario) is service.evaluator(right_turn_task.scenario)

    def test_corrupt_persisted_cache_is_ignored(self, right_turn_task, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("garbage{{{")
        config = ServingConfig(persist_path=str(path))
        service = FeedbackService(core_specifications(), feedback=FeedbackConfig(), config=config)
        response = response_templates(right_turn_task.name, "compliant")[0]
        score = service.score_response(right_turn_task, response)
        service.flush()
        # The flush must leave a valid cache a fresh service can warm from.
        warmed = FeedbackService(core_specifications(), feedback=FeedbackConfig(), config=config)
        assert warmed.score_response(right_turn_task, response) == score
        assert warmed.metrics.cache_hits == 1

    def test_persisted_cache_warms_new_service(self, right_turn_task, tmp_path):
        config = ServingConfig(persist_path=str(tmp_path / "cache.json"))
        first = FeedbackService(core_specifications(), feedback=FeedbackConfig(), config=config)
        response = response_templates(right_turn_task.name, "compliant")[0]
        score = first.score_response(right_turn_task, response)
        first.flush()
        warmed = FeedbackService(core_specifications(), feedback=FeedbackConfig(), config=config)
        assert warmed.score_response(right_turn_task, response) == score
        assert warmed.metrics.cache_misses == 0 and warmed.metrics.cache_hits == 1

    def test_flush_failure_is_not_fatal(self, right_turn_task, tmp_path):
        """An unwritable cache path must not destroy the scoring results."""
        blocked = tmp_path / "not_a_dir"
        blocked.write_text("a file where the cache's parent dir should be")
        config = ServingConfig(persist_path=str(blocked / "cache.json"))
        service = FeedbackService(core_specifications(), feedback=FeedbackConfig(), config=config)
        response = response_templates(right_turn_task.name, "compliant")[0]
        score = service.score_response(right_turn_task, response)
        assert service.flush() is False
        assert score > 0

    def test_metrics_snapshot_shape(self, right_turn_task, batch_responses):
        service = FeedbackService(core_specifications(), feedback=FeedbackConfig())
        service.score_responses(right_turn_task, batch_responses)
        snapshot = service.metrics.snapshot()
        assert snapshot["jobs"] == len(batch_responses)
        assert snapshot["unique_jobs"] < snapshot["jobs"]
        assert snapshot["throughput"] > 0
        assert 0.0 < snapshot["dedup_rate"] < 1.0

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            ServingConfig(backend="gpu")


class TestCli:
    def test_scores_jsonl_with_explicit_scenario(self, tmp_path, capsys):
        from repro.serving.cli import main

        jsonl = tmp_path / "in.jsonl"
        jsonl.write_text(
            '{"task": "enter_roundabout", "response": "1. If there is a pedestrian, stop."}\n'
            '{"task": "merge_onto_highway", "scenario": "highway_merge", "response": "1. Go straight onto the highway."}\n'
        )
        out = tmp_path / "out.jsonl"
        assert main([str(jsonl), "--core-specs", "-o", str(out), "--backend", "serial"]) == 0
        import json

        records = [json.loads(line) for line in out.read_text().splitlines()]
        assert [r["scenario"] for r in records] == ["roundabout", "highway_merge"]
        assert all(isinstance(r["score"], int) for r in records)

    def test_rejects_unknown_task_without_scenario(self, tmp_path, capsys):
        from repro.serving.cli import main

        jsonl = tmp_path / "in.jsonl"
        jsonl.write_text('{"task": "fly_to_the_moon", "response": "1. Stop."}\n')
        assert main([str(jsonl)]) == 2
        assert "add a 'scenario' field" in capsys.readouterr().err

    def test_rejects_non_string_fields_before_scoring(self, tmp_path, capsys):
        from repro.serving.cli import main

        jsonl = tmp_path / "in.jsonl"
        jsonl.write_text('{"task": "enter_roundabout", "response": 5}\n')
        assert main([str(jsonl)]) == 2
        assert "'response' must be a string" in capsys.readouterr().err
        jsonl.write_text('{"task": "enter_roundabout", "response": "1. Stop.", "scenario": 9}\n')
        assert main([str(jsonl)]) == 2
        assert "'scenario' must be a string" in capsys.readouterr().err

    def test_metadata_fields_round_trip_to_output(self, tmp_path, capsys):
        """Extra input fields (ids, provenance) must survive into the output."""
        import json

        from repro.serving.cli import main

        record = {
            "task": "enter_roundabout",
            "response": "1. If there is a pedestrian, stop.",
            "id": "sample-17",
            "meta": {"epoch": 3, "origin": "dpo-sampling"},
        }
        jsonl = tmp_path / "in.jsonl"
        jsonl.write_text(json.dumps(record) + "\n")
        out = tmp_path / "out.jsonl"
        assert main([str(jsonl), "--core-specs", "-o", str(out), "--backend", "serial"]) == 0
        (scored,) = [json.loads(line) for line in out.read_text().splitlines()]
        assert scored["id"] == "sample-17"
        assert scored["meta"] == {"epoch": 3, "origin": "dpo-sampling"}
        assert scored["scenario"] == "roundabout"
        assert isinstance(scored["score"], int)
        # Everything from the input is still there, score/scenario merged in.
        assert scored == {**record, "scenario": "roundabout", "score": scored["score"]}

    def test_input_is_validated_before_the_service_is_built(self, tmp_path, capsys, monkeypatch):
        """A bad input file must fail fast, before verifier construction."""
        import repro.serving.scheduler as scheduler

        def exploding_init(self, *args, **kwargs):
            raise AssertionError("FeedbackService must not be built for invalid input")

        monkeypatch.setattr(scheduler.FeedbackService, "__init__", exploding_init)
        from repro.serving.cli import main

        missing = tmp_path / "nope.jsonl"
        assert main([str(missing)]) == 2
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert main([str(bad)]) == 2
        assert "invalid JSON" in capsys.readouterr().err

    def test_failed_run_leaves_no_truncated_output(self, tmp_path, capsys):
        import json

        from repro.serving.cli import main

        out = tmp_path / "out.jsonl"
        out.write_text('{"task": "previous", "score": 1}\n')
        jsonl = tmp_path / "in.jsonl"
        jsonl.write_text('{"task": "enter_roundabout"}\n')  # missing response
        assert main([str(jsonl), "-o", str(out)]) == 2
        # The pre-existing output is untouched and no tmp litter remains.
        assert json.loads(out.read_text())["task"] == "previous"
        assert list(tmp_path.glob("out.jsonl.tmp.*")) == []

    def test_shared_cache_dir_warms_second_invocation(self, tmp_path, capsys):
        from repro.serving.cli import main

        jsonl = tmp_path / "in.jsonl"
        jsonl.write_text(
            '{"task": "merge_onto_highway", "response": "1. Go straight onto the highway."}\n'
        )
        argv = [str(jsonl), "--core-specs", "--cache-dir", str(tmp_path / "shared"),
                "-o", str(tmp_path / "out.jsonl")]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        err = capsys.readouterr().err
        assert "hit rate 100%" in err and "warm-started" in err

    def _streaming_workload(self, tmp_path):
        import json

        from repro.driving import response_templates

        records = []
        for name in ("enter_roundabout", "turn_right_traffic_light"):
            for index, response in enumerate(response_templates(name, "compliant")):
                records.append({"task": name, "response": response, "id": f"{name}/{index}"})
        jsonl = tmp_path / "in.jsonl"
        jsonl.write_text("".join(json.dumps(record) + "\n" for record in records))
        return jsonl, records

    def test_batch_size_streaming_matches_single_batch_output(self, tmp_path, capsys):
        """--batch-size submits through the async dispatcher; the output must
        be byte-identical to the default single score_batch call."""
        from repro.serving.cli import main

        jsonl, _ = self._streaming_workload(tmp_path)
        blocking_out = tmp_path / "blocking.jsonl"
        streaming_out = tmp_path / "streaming.jsonl"
        base = [str(jsonl), "--core-specs", "--backend", "serial"]
        assert main(base + ["-o", str(blocking_out)]) == 0
        assert (
            main(
                base
                + ["-o", str(streaming_out), "--batch-size", "3", "--max-inflight-batches", "2"]
            )
            == 0
        )
        assert streaming_out.read_text() == blocking_out.read_text()

    def test_inflight_flags_require_batch_size(self, tmp_path, capsys):
        from repro.serving.cli import main

        jsonl, _ = self._streaming_workload(tmp_path)
        assert main([str(jsonl), "--max-inflight-batches", "2"]) == 2
        assert "require --batch-size" in capsys.readouterr().err
        assert main([str(jsonl), "--batch-size", "0"]) == 2
        assert "--batch-size must be positive" in capsys.readouterr().err

    def test_pairs_output_writes_encoded_preference_pairs(self, tmp_path, capsys):
        """--pairs-output emits the DPODatasetWriter spill format: per-task
        canonically ranked pairs, reloadable as EncodedPair records."""
        from repro.dpo.stream import read_encoded_pairs
        from repro.serving.cli import main

        jsonl, records = self._streaming_workload(tmp_path)
        pairs_path = tmp_path / "pairs.jsonl"
        argv = [str(jsonl), "--core-specs", "--backend", "serial",
                "-o", str(tmp_path / "out.jsonl"), "--pairs-output", str(pairs_path)]
        assert main(argv) == 0
        err = capsys.readouterr().err
        assert "encoded preference pairs" in err and "encode stage" in err
        encoded = read_encoded_pairs(pairs_path)
        tasks_seen = {pair.task for pair in encoded}
        assert tasks_seen <= {record["task"] for record in records}
        for pair in encoded:
            assert pair.chosen_ids and pair.rejected_ids
            assert 0 < pair.chosen_response_start < len(pair.chosen_ids)

    def test_pairs_output_is_byte_identical_blocking_vs_streaming(self, tmp_path, capsys):
        """Acceptance: the encoded-pair file must not depend on how the
        scores were obtained (one blocking batch vs async streaming)."""
        from repro.serving.cli import main

        jsonl, _ = self._streaming_workload(tmp_path)
        blocking_pairs = tmp_path / "blocking-pairs.jsonl"
        streaming_pairs = tmp_path / "streaming-pairs.jsonl"
        base = [str(jsonl), "--core-specs", "--backend", "serial", "-o"]
        assert main(base + [str(tmp_path / "b.jsonl"), "--pairs-output", str(blocking_pairs)]) == 0
        assert (
            main(
                base
                + [str(tmp_path / "s.jsonl"), "--pairs-output", str(streaming_pairs),
                   "--batch-size", "2", "--max-inflight-batches", "2"]
            )
            == 0
        )
        assert streaming_pairs.read_bytes() == blocking_pairs.read_bytes()

    def test_pairs_output_covers_off_catalogue_tasks(self, tmp_path, capsys):
        """Records scored via an explicit scenario still group into pairs,
        with a prompt synthesised from the task name."""
        import json

        from repro.dpo.stream import read_encoded_pairs
        from repro.serving.cli import main

        jsonl = tmp_path / "in.jsonl"
        jsonl.write_text(
            json.dumps({"task": "custom_merge", "scenario": "highway_merge",
                        "response": "1. Go straight onto the highway."}) + "\n"
            + json.dumps({"task": "custom_merge", "scenario": "highway_merge",
                          "response": "1. Stop."}) + "\n"
        )
        pairs_path = tmp_path / "pairs.jsonl"
        assert main([str(jsonl), "--core-specs", "--backend", "serial",
                     "-o", str(tmp_path / "out.jsonl"), "--pairs-output", str(pairs_path)]) == 0
        encoded = read_encoded_pairs(pairs_path)
        assert all(pair.task == "custom_merge" for pair in encoded)


class TestJobLevelApi:
    def test_score_batch_mixed_scenarios(self):
        tasks = [task_by_name("turn_right_traffic_light"), task_by_name("enter_roundabout")]
        jobs = []
        for task in tasks:
            for response in response_templates(task.name, "compliant")[:2]:
                jobs.append(FeedbackJob(task=task.name, scenario=task.scenario, response=response))
        service = FeedbackService(core_specifications(), feedback=FeedbackConfig())
        scores = service.score_batch(jobs)
        assert len(scores) == len(jobs)
        reference = FeedbackService(
            core_specifications(), feedback=FeedbackConfig(), config=ServingConfig(enabled=False)
        )
        assert scores == reference.score_batch(jobs)
