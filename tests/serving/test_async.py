"""Async submission, streaming completion and persistent worker-pool tests.

The contract under test: ``submit_batch`` / ``as_completed`` /
``score_batch_async`` return scores bitwise-identical to the synchronous
``score_batch`` reference on every backend; the process backend's
:class:`WorkerPool` forks its executor exactly once per service lifetime no
matter how many batches it scores; and ``close()`` releases every thread and
worker process while never corrupting results.
"""

import asyncio

import pytest

from repro.core.config import FeedbackConfig
from repro.driving import core_specifications, response_templates, task_by_name
from repro.serving import (
    FeedbackJob,
    FeedbackService,
    ServingConfig,
    WorkerPayload,
    WorkerPool,
    as_completed,
)


def _mixed_scenario_jobs() -> list:
    """Templates from three scenarios, with duplicates, as sampling produces."""
    jobs = []
    for name in ("turn_right_traffic_light", "enter_roundabout", "merge_onto_highway"):
        task = task_by_name(name)
        responses = list(response_templates(name, "compliant"))
        responses += list(response_templates(name, "flawed"))[:2]
        responses.append(responses[0])  # exact duplicate
        for response in responses:
            jobs.append(FeedbackJob(task=name, scenario=task.scenario, response=response))
    return jobs


def _service(backend: str = "thread", **config_kwargs) -> FeedbackService:
    return FeedbackService(
        core_specifications(),
        feedback=FeedbackConfig(),
        config=ServingConfig(backend=backend, max_workers=2, **config_kwargs),
        seed=0,
    )


def _reference_scores(jobs) -> list:
    return FeedbackService(
        core_specifications(), feedback=FeedbackConfig(), seed=0, config=ServingConfig(enabled=False)
    ).score_batch(jobs)


class TestSubmitBatch:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_async_submission_matches_serial_reference(self, backend):
        jobs = _mixed_scenario_jobs()
        reference = _reference_scores(jobs)
        with _service(backend) as service:
            handle = service.submit_batch(jobs)
            assert handle.result() == reference, backend

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_interleaved_async_batches_match_sequential_score_batch(self, backend):
        """Several in-flight batches must resolve exactly like sequential calls."""
        jobs = _mixed_scenario_jobs()
        batches = [jobs[i::3] for i in range(3)]  # overlapping content across batches
        sync = _service(backend)
        expected = [sync.score_batch(batch) for batch in batches]
        with _service(backend) as service:
            handles = [service.submit_batch(batch) for batch in batches]
            assert [h.result() for h in handles] == expected

    def test_as_completed_streams_every_handle(self):
        jobs = _mixed_scenario_jobs()
        with _service("serial") as service:
            handles = [service.submit_batch(jobs[:4]), service.submit_batch(jobs[4:])]
            completed = list(as_completed(handles))
            assert sorted(id(h) for h in completed) == sorted(id(h) for h in handles)
            assert all(h.done() for h in completed)
            assert completed[0].result() is not None

    def test_submission_returns_before_scoring_finishes(self):
        """The producer must be free while the dispatcher verifies.

        Structural, not wall-clock: scoring blocks on an event the test only
        sets *after* ``submit_responses`` returns.  If submission blocked on
        verification, the handle could never be pending here (and a true
        deadlock would trip the gate's timeout, failing loudly).
        """
        import threading

        task = task_by_name("enter_roundabout")
        service = _service("serial")
        gate = threading.Event()
        original = service._scorer.score

        def gated_score(*args, **kwargs):
            assert gate.wait(timeout=30), "producer never released the scoring gate"
            return original(*args, **kwargs)

        service._scorer.score = gated_score
        responses = list(response_templates(task.name, "compliant"))
        handle = service.submit_responses(task, responses)
        assert not handle.done(), "verification is gated, yet submission returned a done handle"
        gate.set()
        scores = handle.result()
        service.close()
        assert len(scores) == len(responses)

    def test_concurrent_submitters_share_one_dispatcher(self):
        """Racing producers must not each spin up a dispatcher (that would
        break submission-order execution and leak a thread past close())."""
        import threading

        jobs = _mixed_scenario_jobs()
        slices = [jobs[i::4] for i in range(4)]
        with _service("serial") as service:
            handles: list = [None] * len(slices)

            def submit(index):
                handles[index] = service.submit_batch(slices[index])

            threads = [threading.Thread(target=submit, args=(i,)) for i in range(len(slices))]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            results = [handle.result() for handle in handles]
        assert results == [_reference_scores(batch) for batch in slices]

    def test_score_batch_async_awaitable(self):
        jobs = _mixed_scenario_jobs()[:5]
        reference = _reference_scores(jobs)
        with _service("thread") as service:

            async def run():
                return await service.score_batch_async(jobs)

            assert asyncio.run(run()) == reference

    def test_submit_responses_matches_score_responses(self):
        task = task_by_name("turn_right_traffic_light")
        responses = list(response_templates(task.name, "compliant")) + ["1. Drive nicely."]
        with _service("serial") as service:
            pending = service.submit_responses(task, responses)
            assert pending.result() == service.score_responses(task, responses)


class TestServiceLifecycle:
    def test_close_then_submit_raises(self):
        service = _service("serial")
        service.close()
        with pytest.raises(RuntimeError):
            service.submit_batch(_mixed_scenario_jobs()[:2])

    def test_close_is_idempotent_and_synchronous_path_survives(self):
        task = task_by_name("enter_roundabout")
        service = _service("process")
        response = response_templates(task.name, "compliant")[0]
        before = service.score_response(task, response)
        service.close()
        service.close()
        # Synchronous scoring still works (process pool degrades to serial).
        assert service.score_response(task, response) == before

    def test_close_drains_pending_batches(self):
        jobs = _mixed_scenario_jobs()
        service = _service("serial")
        handle = service.submit_batch(jobs)
        service.close()
        assert handle.done() and handle.result() == _reference_scores(jobs)

    def test_close_flushes_to_shared_cache_dir(self, tmp_path):
        jobs = _mixed_scenario_jobs()[:4]
        config = dict(shared_cache_dir=str(tmp_path / "shared"))
        with _service("serial", **config) as service:
            scores = service.score_batch(jobs)
        warmed = _service("serial", **config)
        assert warmed.metrics.warm_start_entries > 0
        assert warmed.score_batch(jobs) == scores
        assert warmed.metrics.cache_misses == 0


class TestWorkerPoolReuse:
    def test_pool_forks_once_across_batches(self):
        """The tentpole claim: one executor launch per service lifetime."""
        all_jobs = _mixed_scenario_jobs()
        # Three batches of distinct responses so every batch has >= min_batch
        # cold misses and must reach the process pool.
        batches = [all_jobs[0:5], all_jobs[5:10], all_jobs[10:15]]
        with _service("process") as service:
            for batch in batches:
                service.score_batch(batch)
            assert service._pool is not None
            assert service._pool.starts <= 1  # 0 only if this sandbox lacks multiprocessing
            if service._pool.starts == 0:
                assert service._pool._broken

    def test_worker_pool_run_reuses_executor(self):
        jobs = _mixed_scenario_jobs()
        payload = WorkerPayload.from_feedback(core_specifications(), FeedbackConfig(), seed=0)
        fallback = payload.build_scorer()
        expected = [fallback.score(j.task, j.scenario, j.response) for j in jobs]
        with WorkerPool(payload, max_workers=2, min_batch=2) as pool:
            assert pool.run(jobs[:8], fallback=fallback) == expected[:8]
            assert pool.run(jobs[8:], fallback=fallback) == expected[8:]
            assert pool.starts <= 1

    def test_small_batches_never_start_the_pool(self):
        payload = WorkerPayload.from_feedback(core_specifications(), FeedbackConfig(), seed=0)
        fallback = payload.build_scorer()
        jobs = _mixed_scenario_jobs()[:2]
        with WorkerPool(payload, max_workers=2, min_batch=4) as pool:
            scores = pool.run(jobs, fallback=fallback)
            assert pool.starts == 0
            assert scores == [fallback.score(j.task, j.scenario, j.response) for j in jobs]

    def test_closed_pool_degrades_to_serial_scores(self):
        payload = WorkerPayload.from_feedback(core_specifications(), FeedbackConfig(), seed=0)
        fallback = payload.build_scorer()
        jobs = _mixed_scenario_jobs()[:6]
        pool = WorkerPool(payload, max_workers=2, min_batch=2)
        pool.close()
        assert pool.run(jobs, fallback=fallback) == [
            fallback.score(j.task, j.scenario, j.response) for j in jobs
        ]
        assert pool.starts == 0


class TestPipelineAsyncIntegration:
    def test_pipeline_exposes_lifecycle(self):
        from repro.core import DPOAFPipeline
        from repro.core.config import quick_pipeline_config
        from repro.driving import training_tasks

        with DPOAFPipeline(
            quick_pipeline_config(seed=0),
            specifications=core_specifications(),
            tasks=training_tasks()[:1],
            validation=(),
        ) as pipeline:
            pairs = pipeline.augment_with_templates([], per_task=2)
            assert pairs
        with pytest.raises(RuntimeError):
            pipeline.serving.submit_batch([])
