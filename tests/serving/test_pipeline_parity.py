"""Serving-enabled pipeline runs must match the serial reference seed-for-seed."""

import dataclasses

import pytest

from repro.core import DPOAFPipeline, ServingConfig
from repro.core.config import quick_pipeline_config
from repro.driving import core_specifications, training_tasks


def _evaluation_counts(evaluation):
    return [(t.task, t.split, list(t.satisfied_counts)) for t in evaluation.per_task]


@pytest.fixture(scope="module")
def parity_runs():
    """One full (reduced-scale) run per serving mode, identical seeds."""
    results = {}
    for enabled in (True, False):
        config = dataclasses.replace(
            quick_pipeline_config(seed=0), serving=ServingConfig(enabled=enabled)
        )
        pipeline = DPOAFPipeline(
            config, specifications=core_specifications(), tasks=training_tasks()[:2], validation=()
        )
        results[enabled] = (pipeline, pipeline.run(augment_pairs=True))
    yield results
    for pipeline, _ in results.values():
        pipeline.close()


class TestServingParity:
    def test_evaluations_are_bitwise_identical(self, parity_runs):
        _, served = parity_runs[True]
        _, serial = parity_runs[False]
        assert _evaluation_counts(served.before_evaluation) == _evaluation_counts(serial.before_evaluation)
        assert _evaluation_counts(served.after_evaluation) == _evaluation_counts(serial.after_evaluation)

    def test_preference_pairs_are_identical(self, parity_runs):
        _, served = parity_runs[True]
        _, serial = parity_runs[False]
        as_tuples = lambda pairs: [
            (p.task, p.prompt, p.chosen, p.rejected, p.chosen_score, p.rejected_score) for p in pairs
        ]
        assert as_tuples(served.preference_pairs) == as_tuples(serial.preference_pairs)

    def test_served_run_reports_cache_work(self, parity_runs):
        pipeline, served = parity_runs[True]
        metrics = served.serving_metrics
        assert metrics["jobs"] > 0
        # Template augmentation and repeated evaluation guarantee repeats.
        assert metrics["cache_hits"] > 0 and metrics["hit_rate"] > 0
        assert pipeline.serving.cache.stats().size > 0

    def test_serial_run_reports_no_cache_work(self, parity_runs):
        _, serial = parity_runs[False]
        assert serial.serving_metrics["cache_hits"] == 0
        assert serial.serving_metrics["jobs"] > 0
