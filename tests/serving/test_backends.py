"""Backend parity and shared cross-run cache directory tests.

The contract under test: ``"serial"``, ``"thread"`` and ``"process"``
backends return bitwise-identical scores in submission order (formal and
empirical modes), and a ``shared_cache_dir`` warm-starts any later run with
the same feedback fingerprint while never serving stale or partial scores.
"""

import json

import pytest

from repro.core.config import FeedbackConfig
from repro.driving import core_specifications, response_templates, task_by_name
from repro.serving import (
    CacheDirectory,
    FeedbackCache,
    FeedbackJob,
    FeedbackService,
    ServingConfig,
    WorkerPayload,
    feedback_fingerprint,
)
from repro.serving.backends import run_process


def _mixed_scenario_jobs() -> list:
    """Templates from three scenarios, with duplicates, as sampling produces."""
    jobs = []
    for name in ("turn_right_traffic_light", "enter_roundabout", "merge_onto_highway"):
        task = task_by_name(name)
        responses = list(response_templates(name, "compliant"))
        responses += list(response_templates(name, "flawed"))[:2]
        responses.append(responses[0])  # exact duplicate
        for response in responses:
            jobs.append(FeedbackJob(task=name, scenario=task.scenario, response=response))
    return jobs


def _service(backend: str, feedback: FeedbackConfig, **config_kwargs) -> FeedbackService:
    return FeedbackService(
        core_specifications(),
        feedback=feedback,
        config=ServingConfig(backend=backend, max_workers=2, **config_kwargs),
        seed=0,
    )


class TestBackendParity:
    @pytest.mark.parametrize(
        "feedback",
        [FeedbackConfig(), FeedbackConfig(use_empirical=True, empirical_traces=3)],
        ids=["formal", "empirical"],
    )
    def test_three_backends_are_bitwise_identical(self, feedback):
        jobs = _mixed_scenario_jobs()
        if feedback.use_empirical:
            jobs = jobs[:8]  # simulator scoring is slower; a smaller batch suffices
        reference = FeedbackService(
            core_specifications(), feedback=feedback, seed=0, config=ServingConfig(enabled=False)
        ).score_batch(jobs)
        for backend in ("serial", "thread", "process"):
            assert _service(backend, feedback).score_batch(jobs) == reference, backend

    def test_process_backend_small_batch_falls_back_to_serial(self):
        """A tiny miss batch must not pay the fork cost (and still score right)."""
        task = task_by_name("enter_roundabout")
        service = _service("process", FeedbackConfig())
        response = response_templates(task.name, "compliant")[0]
        score = service.score_response(task, response)
        reference = FeedbackService(
            core_specifications(), feedback=FeedbackConfig(), config=ServingConfig(enabled=False)
        ).score_response(task, response)
        assert score == reference

    def test_process_backend_with_custom_model_builder_downgrades_safely(self):
        """A closure model builder cannot ship to workers; scores must still match it."""
        from repro.driving import scenario_model

        def patched_builder(name):
            model = scenario_model(name)
            model.add_state("probe", [])
            model.add_transition(model.states[0], "probe")
            return model

        jobs = _mixed_scenario_jobs()
        patched = FeedbackService(
            core_specifications(),
            feedback=FeedbackConfig(),
            config=ServingConfig(backend="process", max_workers=2),
            model_builder=patched_builder,
        )
        reference = FeedbackService(
            core_specifications(),
            feedback=FeedbackConfig(),
            config=ServingConfig(enabled=False),
            model_builder=patched_builder,
        )
        assert patched.score_batch(jobs) == reference.score_batch(jobs)

    def test_process_backend_with_custom_verifier_downgrades_safely(self):
        """A verifier that disagrees with the feedback config must not ship to
        workers (they would rebuild a default one and score differently)."""
        from repro.feedback import FormalVerifier

        jobs = _mixed_scenario_jobs()
        custom = FormalVerifier(core_specifications(), wait_action=None)
        served = FeedbackService(
            core_specifications(),
            feedback=FeedbackConfig(),
            config=ServingConfig(backend="process", max_workers=2),
            verifier=custom,
        )
        reference = FeedbackService(
            core_specifications(),
            feedback=FeedbackConfig(),
            config=ServingConfig(enabled=False),
            verifier=FormalVerifier(core_specifications(), wait_action=None),
        )
        assert served.score_batch(jobs) == reference.score_batch(jobs)

    def test_pipeline_style_shared_verifier_keeps_process_backend(self):
        """A shared verifier built from the same config (the pipeline's case)
        must not disable the process backend."""
        from repro.feedback import FormalVerifier

        feedback = FeedbackConfig()
        shared = FormalVerifier(
            core_specifications(),
            wait_action=feedback.wait_action,
            restart_on_termination=feedback.restart_on_termination,
        )
        service = FeedbackService(
            core_specifications(),
            feedback=feedback,
            config=ServingConfig(backend="process", max_workers=2),
            verifier=shared,
        )
        assert service._payload is not None

    def test_run_process_preserves_submission_order(self):
        """Chunked dispatch must concatenate chunk results in submission order."""
        jobs = _mixed_scenario_jobs()
        payload = WorkerPayload.from_feedback(core_specifications(), FeedbackConfig(), seed=0)
        fallback = payload.build_scorer()
        scores = run_process(payload, jobs, max_workers=2, fallback=fallback, min_batch=2)
        assert scores == [fallback.score(j.task, j.scenario, j.response) for j in jobs]

    def test_payload_round_trips_through_pickle(self):
        import pickle

        payload = WorkerPayload.from_feedback(
            core_specifications(), FeedbackConfig(use_empirical=True), seed=7
        )
        clone = pickle.loads(pickle.dumps(payload))
        assert clone == payload
        scorer = clone.build_scorer()
        assert scorer.use_empirical and scorer.seed == 7


class TestCacheDirectory:
    def _fingerprint(self, feedback=None, seed=0):
        return feedback_fingerprint(feedback or FeedbackConfig(), core_specifications(), seed=seed)

    def test_store_load_roundtrip_and_merge(self, tmp_path):
        directory = CacheDirectory(tmp_path)
        fp = self._fingerprint()
        first = FeedbackCache(); first.put("a", 1)
        directory.store(fp, first)
        second = FeedbackCache(); second.put("b", 2)
        directory.store(fp, second)
        loaded = directory.load(fp)
        assert loaded.get("a") == 1 and loaded.get("b") == 2

    def test_distinct_fingerprints_use_distinct_shards(self, tmp_path):
        directory = CacheDirectory(tmp_path)
        formal, empirical = self._fingerprint(), self._fingerprint(FeedbackConfig(use_empirical=True))
        cache = FeedbackCache(); cache.put("k", 3)
        directory.store(formal, cache)
        assert directory.shard_path(formal) != directory.shard_path(empirical)
        assert len(directory.load(empirical)) == 0

    def test_corrupt_shard_loads_empty(self, tmp_path):
        directory = CacheDirectory(tmp_path)
        fp = self._fingerprint()
        directory.shard_path(fp).write_text("garbage{{{")
        assert len(directory.load(fp)) == 0
        # And storing over the corrupt shard repairs it.
        cache = FeedbackCache(); cache.put("k", 4)
        directory.store(fp, cache)
        assert directory.load(fp).get("k") == 4

    def test_fingerprint_mismatch_inside_shard_is_ignored(self, tmp_path):
        """A hand-edited (or prefix-colliding) shard must never serve scores."""
        directory = CacheDirectory(tmp_path)
        fp = self._fingerprint()
        directory.shard_path(fp).write_text(
            json.dumps({"schema": 1, "fingerprint": "someone else's", "entries": [["k", 9]]})
        )
        assert len(directory.load(fp)) == 0

    def test_partial_tmp_files_are_never_read(self, tmp_path):
        directory = CacheDirectory(tmp_path)
        fp = self._fingerprint()
        cache = FeedbackCache(); cache.put("k", 5)
        directory.store(fp, cache)
        shard = directory.shard_path(fp)
        (shard.parent / f"{shard.name}.tmp.12345").write_text('{"truncated": ')
        assert directory.load(fp).get("k") == 5

    def test_atomic_save_survives_unserializable_payload(self, tmp_path):
        """A failing save must leave the previous persisted cache intact."""
        path = tmp_path / "cache.json"
        good = FeedbackCache(); good.put("k", 6)
        good.save(path)
        bad = FeedbackCache(); bad.put("k", object())  # not JSON-serializable
        with pytest.raises(TypeError):
            bad.save(path)
        assert FeedbackCache.load(path).get("k") == 6


class TestSharedCacheAcrossRuns:
    def test_two_runs_warm_start_each_other(self, tmp_path):
        jobs = _mixed_scenario_jobs()
        config = ServingConfig(shared_cache_dir=str(tmp_path / "shared"))
        first = FeedbackService(core_specifications(), feedback=FeedbackConfig(), config=config)
        cold_scores = first.score_batch(jobs)
        assert first.metrics.cache_misses > 0 and first.flush()

        second = FeedbackService(core_specifications(), feedback=FeedbackConfig(), config=config)
        assert second.metrics.warm_start_entries > 0
        assert second.score_batch(jobs) == cold_scores
        assert second.metrics.cache_misses == 0 and second.metrics.hit_rate > 0

    def test_warm_start_counts_only_retained_entries(self, tmp_path):
        """A shard larger than the cache bound must not claim every adopted
        key as warm-started — `merge` reports what the LRU actually kept."""
        jobs = _mixed_scenario_jobs()
        shared = str(tmp_path / "shared")
        first = FeedbackService(
            core_specifications(), feedback=FeedbackConfig(),
            config=ServingConfig(shared_cache_dir=shared),
        )
        first.score_batch(jobs)
        first.flush()
        shard_entries = len(first.cache)
        assert shard_entries > 2
        small = FeedbackService(
            core_specifications(), feedback=FeedbackConfig(),
            config=ServingConfig(shared_cache_dir=shared, cache_size=2),
        )
        assert small.metrics.warm_start_entries == 2 == len(small.cache)

    def test_changed_fingerprint_never_reuses_scores(self, tmp_path):
        jobs = _mixed_scenario_jobs()[:4]
        shared = str(tmp_path / "shared")
        formal = FeedbackService(
            core_specifications(), feedback=FeedbackConfig(), config=ServingConfig(shared_cache_dir=shared)
        )
        formal.score_batch(jobs)
        formal.flush()
        empirical = FeedbackService(
            core_specifications(),
            feedback=FeedbackConfig(use_empirical=True, empirical_traces=3),
            config=ServingConfig(shared_cache_dir=shared),
        )
        assert empirical.metrics.warm_start_entries == 0
        empirical.score_batch(jobs)
        assert empirical.metrics.cache_hits == 0

    def test_corrupted_shard_forces_recomputation_not_failure(self, tmp_path):
        jobs = _mixed_scenario_jobs()[:4]
        shared = tmp_path / "shared"
        config = ServingConfig(shared_cache_dir=str(shared))
        first = FeedbackService(core_specifications(), feedback=FeedbackConfig(), config=config)
        scores = first.score_batch(jobs)
        first.flush()
        for shard in shared.glob("*.json"):
            shard.write_text('{"schema": 1, "entries": [["trunc')
        second = FeedbackService(core_specifications(), feedback=FeedbackConfig(), config=config)
        assert second.metrics.warm_start_entries == 0
        assert second.score_batch(jobs) == scores
        assert second.metrics.cache_hits == 0

    def test_pipeline_config_plumbs_shared_cache_dir(self, tmp_path):
        from repro.core.config import quick_pipeline_config

        config = quick_pipeline_config(seed=0, shared_cache_dir=str(tmp_path / "shared"))
        assert config.serving.shared_cache_dir == str(tmp_path / "shared")


class TestAutomataCacheThreading:
    """ServingConfig.automata_cache_dir reaches the memo and the workers."""

    def test_service_populates_the_automata_shard(self, tmp_path):
        from repro.modelcheck.fastpath import configure_automata_cache

        cache_dir = tmp_path / "automata"
        try:
            service = FeedbackService(
                core_specifications(),
                feedback=FeedbackConfig(),
                config=ServingConfig(automata_cache_dir=str(cache_dir)),
            )
            jobs = _mixed_scenario_jobs()[:3]
            service.score_batch(jobs)
        finally:
            configure_automata_cache(None)  # detach the process-wide memo
        shards = list(cache_dir.glob("*.json"))
        assert shards, "verification never persisted any automata"
        document = json.loads(shards[0].read_text())
        assert document["entries"], "the automata shard is empty"

    def test_payload_carries_the_directory_to_workers(self, tmp_path):
        from repro.modelcheck.fastpath import automata_memo, configure_automata_cache

        cache_dir = tmp_path / "automata"
        try:
            service = FeedbackService(
                core_specifications(),
                feedback=FeedbackConfig(),
                config=ServingConfig(automata_cache_dir=str(cache_dir)),
            )
            assert service._payload is not None
            assert service._payload.automata_cache_dir == str(cache_dir)
        finally:
            configure_automata_cache(None)

    def test_warm_shard_preloads_the_memo(self, tmp_path):
        from repro.modelcheck.fastpath import BuchiMemo, configure_automata_cache

        cache_dir = tmp_path / "automata"
        try:
            warm = FeedbackService(
                core_specifications(),
                feedback=FeedbackConfig(),
                config=ServingConfig(automata_cache_dir=str(cache_dir)),
            )
            warm.score_batch(_mixed_scenario_jobs()[:3])
        finally:
            configure_automata_cache(None)
        fresh = BuchiMemo()
        assert fresh.configure_directory(cache_dir) >= len(core_specifications())
