"""Round-robin fairness of the shared :class:`Dispatcher`.

A chatty service that queues a deep backlog must not starve another
service's stream: admission rotates one batch per service, while each
service's own batches still execute strictly in its submission order.
"""

import threading

import pytest

from repro.core.config import FeedbackConfig
from repro.driving import core_specifications, response_templates, task_by_name
from repro.serving import Dispatcher, FeedbackJob, FeedbackService, ServingConfig, as_completed


def _service(dispatcher=None) -> FeedbackService:
    return FeedbackService(
        core_specifications(),
        feedback=FeedbackConfig(),
        config=ServingConfig(backend="serial"),
        seed=0,
        dispatcher=dispatcher,
    )


def _distinct_batches(count: int, size: int = 2) -> list:
    task = task_by_name("enter_roundabout")
    base = response_templates(task.name, "compliant")[0].rstrip("\n")
    steps = len(base.splitlines())
    batches, counter = [], 0
    for _ in range(count):
        jobs = []
        for _ in range(size):
            suffix = "".join(
                f"\n{steps + 1 + extra}. If there is a pedestrian, stop."
                for extra in range(counter + 1)
            )
            counter += 1
            jobs.append(FeedbackJob(task=task.name, scenario=task.scenario, response=base + suffix))
        batches.append(jobs)
    return batches


class TestDispatcherRoundRobin:
    def test_round_robin_across_submitters(self):
        """With service A's backlog queued ahead, B's single task must run
        after at most one more A task — not after the whole backlog."""
        executed = []
        gate = threading.Event()

        def gated_first():
            assert gate.wait(timeout=30)
            executed.append("a0")

        def record(label):
            def run():
                executed.append(label)

            return run

        a, b = object(), object()
        with Dispatcher() as dispatcher:
            futures = [dispatcher.submit(gated_first, service=a)]
            futures += [dispatcher.submit(record(f"a{i}"), service=a) for i in range(1, 6)]
            # a0 is already executing (blocked on the gate); the backlog a1-a5
            # is queued.  B's task arrives late but must not wait out the
            # whole backlog.
            futures.append(dispatcher.submit(record("b0"), service=b))
            gate.set()
            for future in futures:
                future.result(timeout=30)
        assert executed.index("b0") <= 2, f"b0 was starved: {executed}"
        # Per-service FIFO is preserved.
        a_order = [label for label in executed if label.startswith("a")]
        assert a_order == ["a0", "a1", "a2", "a3", "a4", "a5"]

    def test_direct_submissions_share_one_queue(self):
        with Dispatcher() as dispatcher:
            results = [dispatcher.submit(lambda i=i: i) for i in range(4)]
            assert [future.result(timeout=10) for future in results] == [0, 1, 2, 3]

    def test_queued_batches_counts_admitted_work(self):
        gate = threading.Event()
        with Dispatcher() as dispatcher:
            first = dispatcher.submit(lambda: gate.wait(timeout=30))
            second = dispatcher.submit(lambda: None)
            third = dispatcher.submit(lambda: None)
            # first is executing (not queued); the others wait their turn.
            deadline = [dispatcher.queued_batches]
            gate.set()
            for future in (first, second, third):
                future.result(timeout=30)
            assert deadline[0] >= 1
            assert dispatcher.queued_batches == 0

    def test_submit_errors_surface_on_the_future(self):
        with Dispatcher() as dispatcher:
            future = dispatcher.submit(lambda: 1 / 0)
            with pytest.raises(ZeroDivisionError):
                future.result(timeout=10)


class TestServiceFairness:
    def test_chatty_service_does_not_starve_a_second_stream(self):
        """Regression: one service queueing many batches while gated must not
        push another service's single batch to the back of the line."""
        chatty_batches = _distinct_batches(5)
        quiet_batch = _distinct_batches(1, size=3)[0]
        completion_order = []
        gate = threading.Event()

        with Dispatcher() as dispatcher:
            chatty = _service(dispatcher)
            quiet = _service(dispatcher)
            original = chatty._scorer.score

            def gated_score(*args, **kwargs):
                assert gate.wait(timeout=30), "test never opened the gate"
                return original(*args, **kwargs)

            chatty._scorer.score = gated_score
            try:
                chatty_handles = [chatty.submit_batch(batch) for batch in chatty_batches]
                quiet_handle = quiet.submit_batch(quiet_batch)
                gate.set()
                labelled = {handle: f"chatty{i}" for i, handle in enumerate(chatty_handles)}
                labelled[quiet_handle] = "quiet"
                for handle in as_completed(labelled):
                    completion_order.append(labelled[handle])
            finally:
                gate.set()
                chatty.close()
                quiet.close()

        # Round-robin: the quiet batch completes after at most two chatty
        # batches (one already executing, one more from the rotation) — under
        # FIFO it would have been dead last.
        assert completion_order.index("quiet") <= 2, completion_order
        assert [c for c in completion_order if c.startswith("chatty")] == [
            f"chatty{i}" for i in range(5)
        ], "per-service submission order must survive the rotation"

    def test_fair_interleaving_preserves_scores(self):
        """Fairness must never change what a batch scores — only when."""
        batches = _distinct_batches(3)
        reference = FeedbackService(
            core_specifications(),
            feedback=FeedbackConfig(),
            config=ServingConfig(enabled=False),
            seed=0,
        )
        expected = [reference.score_batch(batch) for batch in batches]
        with Dispatcher() as dispatcher:
            first = _service(dispatcher)
            second = _service(dispatcher)
            try:
                handles = [
                    (first if i % 2 == 0 else second).submit_batch(batch)
                    for i, batch in enumerate(batches)
                ]
                assert [handle.result(timeout=30) for handle in handles] == expected
            finally:
                first.close()
                second.close()
