"""Fixtures for the observability tests.

Tracing state is process-global (the installed tracer), so every test runs
against a clean NullTracer and must leave one behind — a test that installed
a tracer and failed before uninstalling it must not leak spans into the next.
"""

from __future__ import annotations

import pytest

from repro.obs import tracer as obs


@pytest.fixture(autouse=True)
def clean_tracer():
    obs.uninstall_tracer()
    yield
    obs.uninstall_tracer()
