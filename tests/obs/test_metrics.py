"""MetricsRegistry tests: instruments, providers, and the run snapshot."""

import threading

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestInstruments:
    def test_counter_accumulates(self):
        counter = Counter("jobs")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0

    def test_gauge_sets_and_shifts(self):
        gauge = Gauge("depth")
        gauge.set(3)
        gauge.inc(-1)
        assert gauge.value == 2.0

    def test_histogram_summary(self):
        histogram = Histogram("latency")
        for value in (1.0, 3.0, 2.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary == {"count": 3, "total": 6.0, "mean": 2.0, "min": 1.0, "max": 3.0}
        assert histogram.mean == 2.0

    def test_empty_histogram_mean_is_zero(self):
        assert Histogram("empty").mean == 0.0
        assert Histogram("empty").summary()["count"] == 0

    def test_counter_is_thread_safe(self):
        counter = Counter("races")

        def bump():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 4000.0


class TestRegistry:
    def test_instruments_are_created_once_per_name(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("jobs").inc(3)
        registry.gauge("depth").set(2)
        registry.histogram("latency").observe(0.5)
        registry.register_provider("serving", lambda: {"hit_rate": 1.0})
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"jobs": 3.0}
        assert snapshot["gauges"] == {"depth": 2.0}
        assert snapshot["histograms"]["latency"]["count"] == 1
        assert snapshot["serving"] == {"hit_rate": 1.0}

    def test_reregistering_a_provider_replaces_it(self):
        registry = MetricsRegistry()
        registry.register_provider("stream", lambda: {"old": True})
        registry.register_provider("stream", lambda: {"new": True})
        assert registry.snapshot()["stream"] == {"new": True}

    def test_failing_provider_is_contained(self):
        registry = MetricsRegistry()

        def broken():
            raise RuntimeError("boom")

        registry.register_provider("broken", broken)
        registry.register_provider("fine", lambda: {"ok": 1})
        snapshot = registry.snapshot()
        assert snapshot["broken"] == {"error": "RuntimeError: boom"}
        assert snapshot["fine"] == {"ok": 1}
