"""Tracing must never change what the system computes.

The contract the whole observability layer rests on: a traced run produces
bitwise-identical scores and pipeline results to an untraced run, on every
backend, with worker-process spans merged back losslessly.
"""

import dataclasses

import pytest

from repro.core import DPOAFPipeline
from repro.core.config import FeedbackConfig, quick_pipeline_config
from repro.driving import core_specifications, response_templates, training_tasks
from repro.obs import tracer as obs
from repro.obs.export import load_chrome_trace
from repro.obs.tracer import Tracer
from repro.serving import FeedbackJob, FeedbackService, ServingConfig

BACKENDS = ("serial", "thread", "process")


def _jobs() -> list:
    jobs = []
    for task in training_tasks()[:3]:
        for kind in ("compliant", "flawed"):
            for response in response_templates(task.name, kind):
                jobs.append(FeedbackJob(task=task.name, scenario=task.scenario, response=response))
    return jobs


def _score(backend: str) -> list:
    with FeedbackService(
        core_specifications(),
        feedback=FeedbackConfig(),
        config=ServingConfig(backend=backend, max_workers=2),
    ) as service:
        return service.score_batch(_jobs())


class TestBackendParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_traced_scores_match_untraced_scores(self, backend, tmp_path):
        untraced = _score(backend)
        tracer = obs.install_tracer(Tracer.for_trace_file(tmp_path / "run.trace.json"))
        try:
            traced = _score(backend)
        finally:
            obs.uninstall_tracer()
        assert traced == untraced
        # The traced run recorded real verification work.
        specs = {
            s.attributes.get("spec") for s in tracer.all_spans() if s.name == "mc.check"
        }
        assert specs == set(core_specifications())

    def test_process_backend_workers_write_mergeable_shards(self, tmp_path):
        tracer = obs.install_tracer(Tracer.for_trace_file(tmp_path / "run.trace.json"))
        try:
            with FeedbackService(
                core_specifications(),
                feedback=FeedbackConfig(),
                config=ServingConfig(backend="process", max_workers=2),
            ) as service:
                service.score_batch(_jobs())
                pool_started = service._pool is not None and service._pool.starts > 0
        finally:
            obs.uninstall_tracer()
        if not pool_started:
            pytest.skip("process pool unavailable; worker shards never written")
        shard_spans, _ = tracer.read_shards()
        assert shard_spans, "workers produced no shard spans"
        assert all(s.pid != tracer._pid for s in shard_spans)
        names = {s.name for s in shard_spans}
        assert names >= {"mc.product", "mc.check"}
        # Construction is memoized process-wide: a forked worker inheriting an
        # already-warm memo emits mc.construct_cached instead of mc.construct.
        assert names & {"mc.construct", "mc.construct_cached"}
        # Merged spans carry spec attribution just like in-process ones.
        assert {s.attributes["spec"] for s in shard_spans if s.name == "mc.check"} == set(
            core_specifications()
        )


@pytest.fixture(scope="module")
def pipeline_parity(tmp_path_factory):
    """One quick pipeline run untraced, one traced, identical seeds."""
    runs = {}
    for traced in (False, True):
        trace_path = (
            str(tmp_path_factory.mktemp("trace") / "run.trace.json") if traced else None
        )
        config = dataclasses.replace(quick_pipeline_config(seed=0), trace_path=trace_path)
        with DPOAFPipeline(
            config, specifications=core_specifications(), tasks=training_tasks()[:2], validation=()
        ) as pipeline:
            runs[traced] = (pipeline.run(augment_pairs=True), trace_path)
    return runs


class TestPipelineParity:
    def test_traced_pipeline_result_is_bitwise_identical(self, pipeline_parity):
        untraced, _ = pipeline_parity[False]
        traced, _ = pipeline_parity[True]
        as_tuples = lambda pairs: [
            (p.task, p.prompt, p.chosen, p.rejected, p.chosen_score, p.rejected_score) for p in pairs
        ]
        assert as_tuples(traced.preference_pairs) == as_tuples(untraced.preference_pairs)
        counts = lambda ev: [(t.task, t.split, list(t.satisfied_counts)) for t in ev.per_task]
        assert counts(traced.before_evaluation) == counts(untraced.before_evaluation)
        assert counts(traced.after_evaluation) == counts(untraced.after_evaluation)
        assert traced.dpo_result.history.losses == untraced.dpo_result.history.losses

    def test_traced_run_exported_a_valid_trace(self, pipeline_parity):
        _, trace_path = pipeline_parity[True]
        document = load_chrome_trace(trace_path)
        timestamps = [e["ts"] for e in document["traceEvents"]]
        assert timestamps == sorted(timestamps)
        names = {e["name"] for e in document["traceEvents"]}
        assert {"pipeline.pretrain", "pipeline.train", "serving.score_batch", "mc.check"} <= names
        metrics = document["otherData"]["metrics"]
        assert metrics["serving"]["jobs"] > 0

    def test_untraced_run_leaves_the_null_tracer_installed(self, pipeline_parity):
        assert not obs.tracing_enabled()
