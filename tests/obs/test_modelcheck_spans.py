"""Span-protocol tests for the model checker's cached construction path.

The fast path must attribute work honestly: an actual LTL→Büchi translation
emits ``mc.construct``; answering from the construction memo emits
``mc.construct_cached`` (never a second ``mc.construct``, which would
misattribute translation time in the trace report); a verification-result
cache hit emits ``mc.check_cached``.
"""

from repro.automata import KripkeStructure
from repro.driving import response_templates, task_by_name
from repro.glm2fsa.builder import build_controller_from_text
from repro.logic import parse_ltl
from repro.modelcheck import ModelChecker
from repro.modelcheck.fastpath import BuchiMemo
from repro.obs import tracer as obs
from repro.obs.report import per_spec_profile
from repro.obs.tracer import Tracer


def simple_kripke():
    kripke = KripkeStructure(name="k")
    kripke.add_state(0, frozenset({"a"}), initial=True)
    kripke.add_transition(0, 0)
    return kripke


class TestConstructSpans:
    def test_memo_hit_emits_construct_cached_not_construct(self):
        tracer = obs.install_tracer(Tracer())
        checker = ModelChecker(memo=BuchiMemo())
        kripke = simple_kripke()
        formula = parse_ltl("G a")
        checker.check(kripke, formula, name="phi")
        checker.check(kripke, formula, name="phi")
        names = [s.name for s in tracer.spans()]
        assert names.count("mc.construct") == 1
        assert names.count("mc.construct_cached") == 1
        cached_span = next(s for s in tracer.spans() if s.name == "mc.construct_cached")
        assert cached_span.attributes["spec"] == "phi"
        assert cached_span.attributes["source"] == "memory"

    def test_disk_hit_is_attributed_to_its_source(self, tmp_path):
        formula = parse_ltl("G (a -> F b)")
        writer = BuchiMemo()
        writer.configure_directory(tmp_path)
        ModelChecker(memo=writer).check(simple_kripke(), formula)

        reader = BuchiMemo()
        reader.configure_directory(tmp_path)
        tracer = obs.install_tracer(Tracer())
        ModelChecker(memo=reader).check(simple_kripke(), formula, name="phi")
        cached = [s for s in tracer.spans() if s.name == "mc.construct_cached"]
        assert len(cached) == 1
        assert cached[0].attributes["source"] == "disk"
        assert not any(s.name == "mc.construct" for s in tracer.spans())

    def test_result_cache_hit_emits_check_cached(self):
        task = task_by_name("turn_left_unprotected")
        model = task.model()
        controller = build_controller_from_text(
            response_templates(task.name, "compliant")[0], task=task.name
        )
        tracer = obs.install_tracer(Tracer())
        checker = ModelChecker(memo=BuchiMemo())
        specs = [parse_ltl("G (ped -> F stop)")]
        checker.verify_controller(model, controller, specs, spec_names=["phi"])
        checker.verify_controller(model, controller, specs, spec_names=["phi"])
        names = [s.name for s in tracer.spans()]
        assert names.count("mc.check") == 1
        assert names.count("mc.check_cached") == 1
        # The cached pass never rebuilds the product.
        assert names.count("mc.build_model") == 1

    def test_profile_counts_cache_hits_and_cached_checks(self):
        tracer = obs.install_tracer(Tracer())
        checker = ModelChecker(memo=BuchiMemo())
        kripke = simple_kripke()
        formula = parse_ltl("G a")
        checker.check(kripke, formula, name="phi")
        checker.check(kripke, formula, name="phi")
        profile = per_spec_profile(tracer.spans())
        entry = profile["phi"]
        assert entry["checks"] == 2
        assert entry["cache_hits"] == 1
        assert entry["construct_cached"] >= 0.0
