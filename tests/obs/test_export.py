"""Chrome trace-event export tests: validity, round trips, and the report CLI."""

import json

import pytest

from repro.obs import tracer as obs
from repro.obs.cli import main as trace_main
from repro.obs.export import (
    TRACE_SCHEMA,
    chrome_trace_events,
    counters_from_trace,
    load_chrome_trace,
    spans_from_trace,
    write_chrome_trace,
)
from repro.obs.report import (
    format_report,
    format_serving_summary,
    hottest_specs,
    per_spec_profile,
    report_from_trace,
    stage_breakdown,
)
from repro.obs.tracer import CounterSample, Span, Tracer


def make_span(name, *, start_ns, duration_ns=1000, category="modelcheck", span_id=1, **attrs):
    return Span(
        name=name, category=category, start_ns=start_ns, duration_ns=duration_ns,
        pid=1, tid=1, span_id=span_id, attributes=attrs,
    )


class TestChromeEvents:
    def test_events_are_sorted_and_rebased(self):
        spans = [
            make_span("late", start_ns=5_000_000, span_id=2),
            make_span("early", start_ns=1_000_000, span_id=1),
        ]
        events = chrome_trace_events(spans)
        assert [e["name"] for e in events] == ["early", "late"]
        timestamps = [e["ts"] for e in events]
        assert timestamps == sorted(timestamps)
        assert timestamps[0] == 0.0  # rebased to the earliest event

    def test_zero_duration_span_gets_a_visible_width(self):
        (event,) = chrome_trace_events([make_span("instant", start_ns=0, duration_ns=0)])
        assert event["ph"] == "X"
        assert event["dur"] >= 1.0

    def test_counter_samples_become_counter_events(self):
        sample = CounterSample(name="depth", value=3.0, timestamp_ns=2_000, pid=1, tid=1)
        events = chrome_trace_events([], [sample])
        assert events == [{"name": "depth", "ph": "C", "ts": 0.0, "pid": 1, "args": {"value": 3.0}}]

    def test_span_identity_travels_in_args(self):
        (event,) = chrome_trace_events([make_span("mc.check", start_ns=0, spec="phi_7")])
        assert event["args"]["span_id"] == 1
        assert event["args"]["spec"] == "phi_7"


class TestWriteAndLoad:
    def test_written_trace_is_loadable_json_with_monotonic_timestamps(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", category="pipeline"):
            with tracer.span("inner", category="modelcheck", spec="phi_1"):
                pass
        tracer.counter("depth", 1)
        path = write_chrome_trace(tmp_path / "run.trace.json", tracer, metrics={"serving": {}})
        document = load_chrome_trace(path)
        assert document["displayTimeUnit"] == "ms"
        assert document["otherData"]["schema"] == TRACE_SCHEMA
        timestamps = [e["ts"] for e in document["traceEvents"]]
        assert timestamps == sorted(timestamps)

    def test_export_merges_worker_shards(self, tmp_path):
        tracer = Tracer(shard_dir=tmp_path / "shards")
        with tracer.span("parent_work", category="serving"):
            pass
        worker = Tracer(jsonl_path=tmp_path / "shards" / "pid-55.jsonl")
        with worker.span("mc.check", category="modelcheck", spec="phi_3"):
            pass
        worker.close()
        document = load_chrome_trace(write_chrome_trace(tmp_path / "out.json", tracer))
        names = {e["name"] for e in document["traceEvents"]}
        assert names == {"parent_work", "mc.check"}

    def test_load_rejects_invalid_json(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json{")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_chrome_trace(bad)

    def test_load_rejects_non_trace_documents(self, tmp_path):
        bad = tmp_path / "other.json"
        bad.write_text(json.dumps({"foo": 1}))
        with pytest.raises(ValueError, match="traceEvents"):
            load_chrome_trace(bad)

    def test_spans_round_trip_through_the_file(self, tmp_path):
        tracer = Tracer()
        with tracer.span("mc.product", category="modelcheck", spec="phi_4"):
            pass
        document = load_chrome_trace(write_chrome_trace(tmp_path / "t.json", tracer))
        (span,) = spans_from_trace(document)
        assert span.name == "mc.product"
        assert span.category == "modelcheck"
        assert span.attributes == {"spec": "phi_4"}
        assert counters_from_trace(document) == []


class TestReport:
    def test_per_spec_profile_aggregates_phases(self):
        spans = [
            make_span("mc.construct", start_ns=0, duration_ns=2_000_000_000, spec="phi_1"),
            make_span("mc.product", start_ns=0, duration_ns=1_000_000_000, spec="phi_1"),
            make_span("mc.check", start_ns=0, duration_ns=500_000_000, spec="phi_1"),
            make_span("mc.check", start_ns=0, duration_ns=4_000_000_000, spec="phi_2"),
            make_span("unrelated", start_ns=0, category="pipeline"),
        ]
        profile = per_spec_profile(spans)
        assert profile["phi_1"]["construct"] == pytest.approx(2.0)
        assert profile["phi_1"]["total"] == pytest.approx(3.5)
        assert profile["phi_1"]["checks"] == 1
        assert profile["phi_2"]["total"] == pytest.approx(4.0)

    def test_hottest_specs_ranks_by_total_with_stable_ties(self):
        profile = {
            "phi_b": {"total": 1.0}, "phi_a": {"total": 1.0}, "phi_hot": {"total": 9.0},
        }
        ranked = hottest_specs(profile, k=2)
        assert [name for name, _ in ranked] == ["phi_hot", "phi_a"]

    def test_stage_breakdown_covers_stage_categories_only(self):
        spans = [
            make_span("pipeline.train", start_ns=0, duration_ns=10**9, category="pipeline"),
            make_span("mc.check", start_ns=0, duration_ns=10**9, spec="x"),
        ]
        breakdown = stage_breakdown(spans)
        assert list(breakdown) == ["pipeline.train"]
        assert breakdown["pipeline.train"]["count"] == 1

    def test_serving_summary_matches_the_cli_wording(self):
        snapshot = {
            "jobs": 10, "unique_jobs": 8, "total_seconds": 2.0, "throughput": 5.0,
            "hit_rate": 1.0, "dedup_rate": 0.2, "warm_start_entries": 3,
            "backpressure_waits": 0, "backpressure_seconds": 0.0,
        }
        line = format_serving_summary(snapshot)
        assert "scored 10 responses (8 unique)" in line
        assert "hit rate 100%" in line
        assert "warm-started 3 entries" in line
        assert "back-pressure" not in line

    def test_report_names_the_hottest_specs(self):
        spans = [
            make_span("mc.check", start_ns=0, duration_ns=3 * 10**9, spec="phi_slow"),
            make_span("mc.check", start_ns=0, duration_ns=1 * 10**9, spec="phi_fast"),
        ]
        text = format_report(spans, top=1)
        assert "phi_slow" in text
        assert "phi_fast" not in text  # outside the top-1 cut
        assert "hottest specs (top 1 of 2)" in text

    def test_empty_report_is_explicit(self):
        assert "empty trace" in format_report([])

    def test_report_from_trace_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("mc.construct", category="modelcheck", spec="phi_6"):
            pass
        path = write_chrome_trace(
            tmp_path / "t.json", tracer, metrics={"serving": None, "stream": {"pairs": 4}}
        )
        text = report_from_trace(load_chrome_trace(path))
        assert "phi_6" in text
        assert "pairs: 4" in text


class TestCli:
    def test_report_command_prints_the_summary(self, tmp_path, capsys):
        tracer = Tracer()
        with tracer.span("mc.check", category="modelcheck", spec="phi_11"):
            pass
        path = write_chrome_trace(tmp_path / "run.json", tracer)
        assert trace_main(["report", str(path)]) == 0
        assert "phi_11" in capsys.readouterr().out

    def test_missing_file_is_a_clean_error(self, tmp_path, capsys):
        assert trace_main(["report", str(tmp_path / "absent.json")]) == 2
        assert "repro-trace:" in capsys.readouterr().err

    def test_top_flag_limits_the_ranking(self, tmp_path, capsys):
        tracer = Tracer()
        for index in range(3):
            with tracer.span("mc.check", category="modelcheck", spec=f"phi_{index}"):
                pass
        path = write_chrome_trace(tmp_path / "run.json", tracer)
        assert trace_main(["report", str(path), "--top", "2"]) == 0
        assert "top 2 of 3" in capsys.readouterr().out
