"""Tracer unit tests: nesting, the null path, sinks, and shard merging."""

import json
import threading

import pytest

from repro.obs import tracer as obs
from repro.obs.tracer import CounterSample, NullTracer, Span, Tracer


class TestNullPath:
    def test_default_tracer_is_null(self):
        assert isinstance(obs.current_tracer(), NullTracer)
        assert not obs.tracing_enabled()

    def test_null_span_is_a_shared_noop_context_manager(self):
        first = obs.span("anything", category="modelcheck", spec="phi_1")
        second = obs.span("else")
        assert first is second  # one shared handle, zero allocation per span
        with first as handle:
            handle.set_attribute("ignored", 1)  # must not raise

    def test_null_counter_is_a_noop(self):
        obs.counter("queue", 3)  # nothing to assert beyond "does not raise"

    def test_install_and_uninstall_swap_the_global(self):
        tracer = Tracer()
        assert obs.install_tracer(tracer) is tracer
        assert obs.current_tracer() is tracer
        assert obs.tracing_enabled()
        obs.uninstall_tracer()
        assert isinstance(obs.current_tracer(), NullTracer)


class TestNesting:
    def test_child_records_parent_and_root_has_none(self):
        tracer = obs.install_tracer(Tracer())
        with obs.span("outer", category="pipeline"):
            with obs.span("inner", category="modelcheck", spec="phi_2"):
                pass
        inner, outer = tracer.spans()  # inner closes (and lands) first
        assert inner.name == "inner" and outer.name == "outer"
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert inner.attributes == {"spec": "phi_2"}

    def test_sibling_spans_share_a_parent(self):
        tracer = obs.install_tracer(Tracer())
        with obs.span("parent"):
            with obs.span("a"):
                pass
            with obs.span("b"):
                pass
        a, b, parent = tracer.spans()
        assert a.parent_id == parent.span_id
        assert b.parent_id == parent.span_id
        assert a.span_id != b.span_id

    def test_nested_span_timing_is_contained_in_parent(self):
        tracer = obs.install_tracer(Tracer())
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        inner, outer = tracer.spans()
        assert outer.start_ns <= inner.start_ns
        assert inner.start_ns + inner.duration_ns <= outer.start_ns + outer.duration_ns
        assert inner.duration_seconds >= 0.0

    def test_threads_nest_independently(self):
        tracer = obs.install_tracer(Tracer())
        ready = threading.Barrier(2)

        def worker():
            ready.wait()
            with obs.span("thread_root"):
                pass

        with obs.span("main_root"):
            thread = threading.Thread(target=worker)
            thread.start()
            ready.wait()
            thread.join()
        roots = [s for s in tracer.spans() if s.name == "thread_root"]
        assert roots and roots[0].parent_id is None  # not a child of main_root

    def test_set_attribute_lands_on_the_span(self):
        tracer = obs.install_tracer(Tracer())
        with obs.span("work") as handle:
            handle.set_attribute("items", 7)
        (span,) = tracer.spans()
        assert span.attributes["items"] == 7


class TestRecords:
    def test_span_round_trips_through_its_record(self):
        span = Span(
            name="mc.check", category="modelcheck", start_ns=10, duration_ns=5,
            pid=1, tid=2, span_id=3, parent_id=None, attributes={"spec": "phi_9"},
        )
        assert Span.from_record(span.to_record()) == span
        assert span.to_record()["kind"] == "span"

    def test_counter_round_trips_through_its_record(self):
        sample = CounterSample(name="depth", value=4.0, timestamp_ns=9, pid=1, tid=2)
        assert CounterSample.from_record(sample.to_record()) == sample
        assert sample.to_record()["kind"] == "counter"


class TestSinks:
    def test_jsonl_sink_flushes_every_record(self, tmp_path):
        path = tmp_path / "shard.jsonl"
        tracer = Tracer(jsonl_path=path)
        with tracer.span("one", category="modelcheck", spec="phi_1"):
            pass
        tracer.counter("depth", 2)
        # Flushed per record: readable before close().
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["kind"] for line in lines] == ["span", "counter"]
        tracer.close()
        tracer.close()  # idempotent

    def test_shard_merge_combines_per_pid_files(self, tmp_path):
        shard_dir = tmp_path / "shards"
        parent = Tracer(shard_dir=shard_dir)
        for fake_pid in (101, 102):
            worker = Tracer(jsonl_path=shard_dir / f"pid-{fake_pid}.jsonl")
            with worker.span("mc.check", category="modelcheck", spec=f"phi_{fake_pid}"):
                pass
            worker.counter("worker.jobs", fake_pid)
            worker.close()
        spans, counters = parent.read_shards()
        assert {s.attributes["spec"] for s in spans} == {"phi_101", "phi_102"}
        assert {c.value for c in counters} == {101.0, 102.0}
        # Non-destructive: a second read sees the same shards.
        again, _ = parent.read_shards()
        assert len(again) == len(spans)

    def test_shard_merge_tolerates_torn_lines(self, tmp_path):
        shard_dir = tmp_path / "shards"
        shard_dir.mkdir()
        good = Span(
            name="mc.product", category="modelcheck", start_ns=1, duration_ns=1,
            pid=7, tid=7, span_id=1,
        )
        (shard_dir / "pid-7.jsonl").write_text(
            json.dumps(good.to_record()) + "\n" + '{"kind": "span", "name": "tor'
        )
        spans, counters = Tracer(shard_dir=shard_dir).read_shards()
        assert [s.name for s in spans] == ["mc.product"]
        assert counters == []

    def test_all_spans_is_local_plus_shards(self, tmp_path):
        shard_dir = tmp_path / "shards"
        parent = Tracer(shard_dir=shard_dir)
        with parent.span("local"):
            pass
        worker = Tracer(jsonl_path=shard_dir / "pid-9.jsonl")
        with worker.span("remote"):
            pass
        worker.close()
        assert {s.name for s in parent.all_spans()} == {"local", "remote"}

    def test_for_trace_file_places_shards_next_to_the_trace(self, tmp_path):
        tracer = Tracer.for_trace_file(tmp_path / "run.trace.json")
        assert tracer.shard_dir == tmp_path / "run.trace.json.shards"
        assert tracer.shard_dir.is_dir()

    def test_read_shards_without_shard_dir_is_empty(self):
        assert Tracer().read_shards() == ([], [])
