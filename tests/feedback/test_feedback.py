"""Tests for formal/empirical feedback and preference-pair construction."""

import pytest

from repro.driving import all_specifications, core_specifications, response_templates
from repro.feedback import (
    EmpiricalEvaluator,
    FeedbackRanker,
    FormalVerifier,
    PreferencePair,
    max_pairs,
    rank_to_pairs,
    trace_satisfaction,
)
from repro.logic import parse_ltl


class TestFormalVerifier:
    @pytest.fixture(scope="class")
    def verifier(self):
        return FormalVerifier(all_specifications())

    def test_compliant_beats_flawed(self, verifier, right_turn_task):
        model = right_turn_task.model()
        good = verifier.verify_response(model, response_templates(right_turn_task.name, "compliant")[0], task="good")
        bad = verifier.verify_response(model, response_templates(right_turn_task.name, "flawed")[0], task="bad")
        assert good.num_satisfied > bad.num_satisfied
        assert good.satisfaction_ratio > 0.85
        assert "phi_5" in bad.violated

    def test_unparseable_response_scores_zero(self, verifier, right_turn_task):
        feedback = verifier.verify_response(right_turn_task.model(), "1. Just be careful.", task="vague")
        assert feedback.parse_failed
        assert feedback.num_satisfied == 0
        assert feedback.num_specifications == 15

    def test_rank_responses_orders_by_score(self, verifier, right_turn_task):
        responses = [
            response_templates(right_turn_task.name, "flawed")[0],
            response_templates(right_turn_task.name, "compliant")[0],
        ]
        ranked = verifier.rank_responses(right_turn_task.model(), responses, task=right_turn_task.name)
        assert ranked[0][0] == 1  # the compliant response comes first

    def test_verify_controller_reports_names(self, verifier, right_turn_task, right_turn_good_controller):
        feedback = verifier.verify_controller(right_turn_task.model(), right_turn_good_controller, task="good")
        assert set(feedback.satisfied) | set(feedback.violated) == set(all_specifications())
        assert "specifications satisfied" in feedback.describe()


class TestEmpiricalFeedback:
    def test_trace_satisfaction_counts(self):
        specs = {"resp": parse_ltl("G(ped -> F stop)"), "live": parse_ltl("F go")}
        traces = [[{"ped"}, {"stop"}], [{"ped"}, {"go"}]]
        values = trace_satisfaction(specs, traces)
        assert values["resp"] == pytest.approx(0.5)
        assert values["live"] == pytest.approx(0.5)

    def test_requires_traces(self):
        with pytest.raises(ValueError):
            trace_satisfaction({"a": parse_ltl("a")}, [])

    def test_evaluator_with_stub_grounding(self):
        def grounding(controller, num_traces, seed):  # noqa: ARG001 - fixed traces
            return [[{"ped", "stop"}], [{"ped"}]] * (num_traces // 2 or 1)

        evaluator = EmpiricalEvaluator({"phi": parse_ltl("G(ped -> F stop)")}, grounding, threshold=0.9)
        feedback = evaluator.evaluate_controller(object(), num_traces=4, task="stub")
        assert feedback.num_traces == 4
        assert feedback.num_satisfied == 0          # only half the traces satisfy the spec
        assert feedback.mean_satisfaction == pytest.approx(0.5)

    def test_simulation_grounding_integration(self, right_turn_task, right_turn_good_controller, core_specs):
        from repro.sim import SimulationGrounding

        evaluator = EmpiricalEvaluator(core_specs, SimulationGrounding(right_turn_task.scenario), threshold=0.9)
        feedback = evaluator.evaluate_controller(right_turn_good_controller, num_traces=8, seed=0)
        assert feedback.num_specifications == 5
        assert 0.0 <= feedback.mean_satisfaction <= 1.0
        assert feedback.satisfaction["phi_5"] >= 0.9   # compliant controller respects Φ5 in simulation


class TestRankerOrderIndependence:
    """rank_to_pairs output must be a pure function of the (response, score)
    multiset — the property streaming pair construction relies on."""

    RESPONSES = [
        "1. Stop at the line.",
        "2. Yield to traffic.",
        "3. Merge when clear.",
        "4. Signal before turning.",
        "5. Check the mirror.",
        "1. Stop at the line.",  # duplicate response, duplicate score
    ]
    SCORES = [3, 1, 4, 1, 5, 3]

    def test_permutation_invariance_property(self):
        """Property test: the pair *list* (content and order) is identical
        under random permutations of the input."""
        import random

        reference = rank_to_pairs("p", self.RESPONSES, self.SCORES, task="t")
        assert reference  # non-trivial workload
        rng = random.Random(20260728)
        indices = list(range(len(self.RESPONSES)))
        for _ in range(100):
            rng.shuffle(indices)
            permuted = rank_to_pairs(
                "p",
                [self.RESPONSES[i] for i in indices],
                [self.SCORES[i] for i in indices],
                task="t",
            )
            assert permuted == reference

    def test_reversal_and_identity_agree(self):
        forward = rank_to_pairs("p", self.RESPONSES, self.SCORES)
        backward = rank_to_pairs("p", self.RESPONSES[::-1], self.SCORES[::-1])
        assert forward == backward

    def test_canonical_ranking_orders_by_score_then_fingerprint(self):
        from repro.feedback import canonical_ranking, response_fingerprint

        responses = ["b", "a", "c"]
        scores = [1, 2, 1]
        ranking = canonical_ranking(responses, scores)
        assert ranking[0] == 1  # highest score first
        tied = sorted(["b", "c"], key=response_fingerprint)
        assert [responses[i] for i in ranking[1:]] == tied

    def test_response_fingerprint_is_content_addressed(self):
        from repro.feedback import response_fingerprint

        assert response_fingerprint("x") == response_fingerprint("x")
        assert response_fingerprint("x") != response_fingerprint("y")
        assert len(response_fingerprint("x")) == 64  # sha256 hex

    def test_pairs_enumerate_canonical_order(self):
        """First pair is best-vs-next, pairs walk the ranking — deterministic
        regardless of how the caller ordered the inputs."""
        pairs = rank_to_pairs("p", ["low", "high", "mid"], [1, 9, 5])
        assert (pairs[0].chosen, pairs[0].rejected) == ("high", "mid")
        assert (pairs[1].chosen, pairs[1].rejected) == ("high", "low")
        assert (pairs[2].chosen, pairs[2].rejected) == ("mid", "low")


class TestRanker:
    def test_rank_to_pairs_orientation(self):
        pairs = rank_to_pairs("prompt", ["worse", "better"], [3, 10], task="t")
        assert len(pairs) == 1
        assert pairs[0].chosen == "better"
        assert pairs[0].rejected == "worse"
        assert pairs[0].margin == 7

    def test_ties_are_dropped(self):
        assert rank_to_pairs("p", ["a", "b"], [5, 5]) == []

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            rank_to_pairs("p", ["a"], [1, 2])

    def test_max_pairs_formula(self):
        assert max_pairs(num_tasks=10, responses_per_task=3) == 30
        assert max_pairs(num_tasks=1, responses_per_task=2) == 1

    def test_feedback_ranker_over_dataset(self):
        ranker = FeedbackRanker(lambda task, response: len(response))
        items = [("task", "prompt", ["aa", "aaaa", "a"])]
        pairs = ranker.pairs_for_dataset(items)
        assert len(pairs) == 3
        assert all(isinstance(p, PreferencePair) for p in pairs)
        assert all(len(p.chosen) > len(p.rejected) for p in pairs)
