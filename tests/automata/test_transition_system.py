"""Tests for world models and Algorithm 1."""

import pytest
from hypothesis import given, strategies as st

from repro.automata import TransitionSystem, Vocabulary, build_model_from_labels, build_model_from_system
from repro.automata.transition_system import describe_model
from repro.errors import AutomatonError


@pytest.fixture()
def light_model() -> TransitionSystem:
    vocab = Vocabulary(propositions=frozenset({"green", "yellow", "red"}))
    model = TransitionSystem(name="light", vocabulary=vocab)
    model.add_state("g", ["green"], initial=True)
    model.add_state("y", ["yellow"])
    model.add_state("r", ["red"])
    model.add_transition("g", "r")
    model.add_transition("r", "y")
    model.add_transition("y", "g")
    return model


class TestTransitionSystem:
    def test_counts(self, light_model):
        assert light_model.num_states == 3
        assert light_model.num_transitions == 3

    def test_label_lookup(self, light_model):
        assert light_model.label("g") == frozenset({"green"})

    def test_unknown_state_raises(self, light_model):
        with pytest.raises(AutomatonError):
            light_model.label("missing")
        with pytest.raises(AutomatonError):
            light_model.successors("missing")

    def test_successors_predecessors(self, light_model):
        assert light_model.successors("g") == frozenset({"r"})
        assert light_model.predecessors("g") == frozenset({"y"})

    def test_has_transition(self, light_model):
        assert light_model.has_transition("g", "r")
        assert not light_model.has_transition("r", "g")

    def test_states_with_label(self, light_model):
        assert light_model.states_with_label(["green"]) == ["g"]

    def test_transition_requires_existing_states(self, light_model):
        with pytest.raises(AutomatonError):
            light_model.add_transition("g", "nowhere")

    def test_conflicting_label_rejected(self, light_model):
        with pytest.raises(AutomatonError):
            light_model.add_state("g", ["red"])

    def test_isolated_state_pruning(self, light_model):
        light_model.add_state("island", ["green", "yellow"])
        assert "island" in light_model.isolated_states()
        removed = light_model.prune_isolated_states()
        assert removed == 1
        assert "island" not in light_model.states

    def test_union_prefixes_states(self, light_model):
        other = TransitionSystem(name="other", vocabulary=light_model.vocabulary)
        other.add_state("g", ["red"], initial=True)
        other.add_transition("g", "g")
        merged = light_model.union(other)
        assert merged.num_states == 4
        assert merged.label("light::g") == frozenset({"green"})
        assert merged.label("other::g") == frozenset({"red"})

    def test_to_networkx(self, light_model):
        graph = light_model.to_networkx()
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 3

    def test_describe_mentions_every_state(self, light_model):
        text = describe_model(light_model)
        for state in light_model.states:
            assert state in text


class TestAlgorithmOne:
    def test_traffic_light_example(self):
        """The paper's red-green-yellow example keeps exactly three states."""
        order = {
            frozenset({"green"}): frozenset({"red"}),
            frozenset({"red"}): frozenset({"yellow"}),
            frozenset({"yellow"}): frozenset({"green"}),
        }
        model = build_model_from_system(
            ["green", "yellow", "red"],
            lambda a, b: order.get(a) == b,
            name="paper_example",
        )
        assert model.num_states == 3
        assert model.num_transitions == 3
        labels = set(model.symbols())
        assert frozenset({"green", "yellow"}) not in labels

    def test_conservative_keeps_everything(self):
        model = build_model_from_system(["a", "b"], lambda a, b: False, conservative=True)
        assert model.num_states == 4
        assert model.num_transitions == 16

    def test_initial_labels_restrict_initial_states(self):
        model = build_model_from_system(
            ["a"],
            lambda x, y: True,
            initial_labels=[["a"]],
        )
        assert all(model.label(s) == frozenset({"a"}) for s in model.initial_states)

    @given(st.integers(min_value=1, max_value=4))
    def test_conservative_state_count_is_power_of_two(self, n):
        props = [f"p{i}" for i in range(n)]
        model = build_model_from_system(props, lambda a, b: True, conservative=True)
        assert model.num_states == 2 ** n


class TestBuildFromLabels:
    def test_build_and_validate(self):
        vocab = Vocabulary(propositions=frozenset({"x"}))
        model = build_model_from_labels(
            "tiny", vocab, {"s0": ["x"], "s1": []}, [("s0", "s1"), ("s1", "s0")], initial_states=["s0"]
        )
        assert model.initial_states == {"s0"}
        assert model.label("s1") == frozenset()

    def test_unknown_initial_state_raises(self):
        vocab = Vocabulary(propositions=frozenset({"x"}))
        with pytest.raises(AutomatonError):
            build_model_from_labels("tiny", vocab, {"s0": ["x"]}, [], initial_states=["nope"])
