"""Tests for propositional guards and the guard parser."""

import pytest
from hypothesis import given, strategies as st

from repro.automata.guards import (
    FALSE,
    TRUE,
    GuardAnd,
    GuardNot,
    GuardOr,
    atom,
    conj,
    disj,
    parse_guard,
    symbol_guard,
)
from repro.errors import AutomatonError


class TestGuardEvaluation:
    def test_true_and_false(self):
        assert TRUE.evaluate(frozenset())
        assert not FALSE.evaluate(frozenset({"a"}))

    def test_atom_membership(self):
        assert atom("green").evaluate(frozenset({"green"}))
        assert not atom("green").evaluate(frozenset({"red"}))

    def test_not(self):
        guard = ~atom("green")
        assert guard.evaluate(frozenset())
        assert not guard.evaluate(frozenset({"green"}))

    def test_and_or_operators(self):
        guard = atom("a") & ~atom("b")
        assert guard.evaluate(frozenset({"a"}))
        assert not guard.evaluate(frozenset({"a", "b"}))
        guard = atom("a") | atom("b")
        assert guard.evaluate(frozenset({"b"}))
        assert not guard.evaluate(frozenset())

    def test_atoms_collection(self):
        guard = parse_guard("a & (b | !c)")
        assert guard.atoms() == frozenset({"a", "b", "c"})

    def test_symbol_guard(self):
        guard = symbol_guard(["a"], ["b"])
        assert guard.evaluate(frozenset({"a"}))
        assert not guard.evaluate(frozenset({"a", "b"}))

    def test_conj_disj_simplification(self):
        assert conj() is TRUE
        assert disj() is FALSE
        assert conj(TRUE, atom("a")).evaluate(frozenset({"a"}))
        assert conj(FALSE, atom("a")) is FALSE
        assert disj(TRUE, atom("a")) is TRUE


class TestGuardParser:
    def test_single_atom(self):
        assert parse_guard("green_light").evaluate(frozenset({"green_light"}))

    def test_precedence_not_over_and_over_or(self):
        guard = parse_guard("a | b & !c")
        # parsed as a | (b & (!c))
        assert guard.evaluate(frozenset({"a", "c"}))
        assert guard.evaluate(frozenset({"b"}))
        assert not guard.evaluate(frozenset({"b", "c"}))

    def test_parentheses(self):
        guard = parse_guard("(a | b) & c")
        assert guard.evaluate(frozenset({"a", "c"}))
        assert not guard.evaluate(frozenset({"a"}))

    def test_unicode_connectives(self):
        guard = parse_guard("green ∧ ¬ped")
        assert guard.evaluate(frozenset({"green"}))
        assert not guard.evaluate(frozenset({"green", "ped"}))

    def test_true_false_keywords(self):
        assert parse_guard("true").evaluate(frozenset())
        assert not parse_guard("false").evaluate(frozenset({"x"}))

    def test_roundtrip_through_str(self):
        guard = parse_guard("a & !(b | c)")
        reparsed = parse_guard(str(guard))
        for symbol in [frozenset(), frozenset({"a"}), frozenset({"a", "b"}), frozenset({"b", "c"})]:
            assert guard.evaluate(symbol) == reparsed.evaluate(symbol)

    def test_errors(self):
        with pytest.raises(AutomatonError):
            parse_guard("")
        with pytest.raises(AutomatonError):
            parse_guard("(a & b")
        with pytest.raises(AutomatonError):
            parse_guard("a b |")

    @given(st.sets(st.sampled_from(["a", "b", "c"]), max_size=3))
    def test_de_morgan_property(self, symbol):
        """!(a & b) ≡ !a | !b on every symbol (property-based)."""
        left = GuardNot(GuardAnd((atom("a"), atom("b"))))
        right = GuardOr((GuardNot(atom("a")), GuardNot(atom("b"))))
        assert left.evaluate(frozenset(symbol)) == right.evaluate(frozenset(symbol))
