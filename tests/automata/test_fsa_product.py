"""Tests for FSA controllers, Kripke structures, and the product automaton."""

import pytest

from repro.automata import FSAController, KripkeStructure, Vocabulary, always_controller, build_product
from repro.automata.product import ProductState, product_statistics
from repro.errors import AutomatonError


class TestFSAController:
    def test_first_state_becomes_initial(self, simple_vocabulary):
        controller = FSAController(vocabulary=simple_vocabulary)
        controller.add_state("a")
        controller.add_state("b")
        assert controller.initial_state == "a"

    def test_explicit_initial(self, simple_vocabulary):
        controller = FSAController(vocabulary=simple_vocabulary)
        controller.add_state("a")
        controller.add_state("b", initial=True)
        assert controller.initial_state == "b"

    def test_string_guard_and_action(self, simple_vocabulary):
        controller = FSAController(vocabulary=simple_vocabulary)
        controller.add_state("q0")
        transition = controller.add_transition("q0", "green & !ped", "go", "q0")
        assert transition.action == frozenset({"go"})
        assert transition.guard.evaluate(frozenset({"green"}))

    def test_epsilon_action(self, simple_vocabulary):
        controller = FSAController(vocabulary=simple_vocabulary)
        controller.add_state("q0")
        transition = controller.add_transition("q0", "true", None, "q0")
        assert transition.action == frozenset()

    def test_unknown_action_rejected(self, simple_vocabulary):
        controller = FSAController(vocabulary=simple_vocabulary)
        controller.add_state("q0")
        with pytest.raises(AutomatonError):
            controller.add_transition("q0", "true", "fly", "q0")

    def test_unknown_state_rejected(self, simple_vocabulary):
        controller = FSAController(vocabulary=simple_vocabulary)
        controller.add_state("q0")
        with pytest.raises(AutomatonError):
            controller.add_transition("q0", "true", "go", "q1")

    def test_step_and_enabled(self, safe_controller):
        moves = safe_controller.step("q0", frozenset({"green"}))
        assert moves == [(frozenset({"go"}), "q0")]
        moves = safe_controller.step("q0", frozenset({"green", "ped"}))
        assert moves == [(frozenset({"stop"}), "q0")]

    def test_determinism_and_completeness(self, safe_controller):
        symbols = [frozenset(), frozenset({"green"}), frozenset({"ped"}), frozenset({"green", "ped"})]
        assert safe_controller.is_deterministic(symbols)
        assert safe_controller.is_complete(symbols)
        assert safe_controller.blocking_pairs(symbols) == []

    def test_actions_and_input_atoms(self, safe_controller):
        assert safe_controller.actions_used() == frozenset({"go", "stop"})
        assert safe_controller.input_atoms() == frozenset({"green", "ped"})

    def test_always_controller(self):
        controller = always_controller("always_go", "go")
        assert controller.step("q0", frozenset()) == [(frozenset({"go"}), "q0")]

    def test_validate_empty_controller(self, simple_vocabulary):
        with pytest.raises(AutomatonError):
            FSAController(vocabulary=simple_vocabulary).validate()

    def test_describe_lists_transitions(self, safe_controller):
        text = safe_controller.describe()
        assert "q0" in text and "go" in text


class TestKripkeStructure:
    def test_reachability_and_totalisation(self):
        kripke = KripkeStructure(name="k")
        kripke.add_state("a", ["x"], initial=True)
        kripke.add_state("b", [])
        kripke.add_state("c", ["y"])
        kripke.add_transition("a", "b")
        assert kripke.deadlock_states() == {"b", "c"}
        added = kripke.make_total()
        assert added == 2
        assert kripke.reachable_states() == {"a", "b"}
        restricted = kripke.restrict_to_reachable()
        assert set(restricted.states) == {"a", "b"}

    def test_validate_requires_initial(self):
        kripke = KripkeStructure()
        kripke.add_state("a", [])
        with pytest.raises(AutomatonError):
            kripke.validate()

    def test_atoms_union(self):
        kripke = KripkeStructure()
        kripke.add_state("a", ["x"], initial=True)
        kripke.add_state("b", ["y"])
        assert kripke.atoms() == frozenset({"x", "y"})


class TestProduct:
    def test_labels_combine_observation_and_action(self, simple_model, safe_controller):
        product = build_product(simple_model, safe_controller)
        some_state = next(iter(product.initial_states))
        assert isinstance(some_state, ProductState)
        label = product.label(some_state)
        assert label & {"go", "stop"}  # the action part is present

    def test_every_initial_model_state_is_covered(self, simple_model, safe_controller):
        product = build_product(simple_model, safe_controller)
        covered = {state.model_state for state in product.initial_states}
        assert covered == set(simple_model.initial_states)

    def test_reckless_product_contains_ped_go_label(self, simple_model, reckless_controller):
        product = build_product(simple_model, reckless_controller)
        labels = {product.label(s) for s in product.states}
        assert frozenset({"ped", "go"}) in labels

    def test_statistics(self, simple_model, safe_controller):
        stats = product_statistics(build_product(simple_model, safe_controller))
        assert stats["states"] > 0
        assert stats["initial_states"] >= len(simple_model.initial_states)

    def test_blocking_controller_raises(self, simple_model, simple_vocabulary):
        blocked = FSAController(name="blocked", vocabulary=simple_vocabulary)
        blocked.add_state("q0", initial=True)
        blocked.add_transition("q0", "green & ped & !green", "go", "q0")  # unsatisfiable guard
        with pytest.raises(AutomatonError):
            build_product(simple_model, blocked)

    def test_restart_on_termination_extends_runs(self, simple_model, simple_vocabulary):
        one_shot = FSAController(name="one_shot", vocabulary=simple_vocabulary)
        one_shot.add_state("q0", initial=True)
        one_shot.add_state("q1")
        one_shot.add_transition("q0", "true", "go", "q1")
        stuttering = build_product(simple_model, one_shot, restart_on_termination=False)
        restarting = build_product(simple_model, one_shot, restart_on_termination=True)
        # With restarts the controller re-enters q0, so more product states are reachable.
        assert restarting.num_states >= stuttering.num_states
        terminal_selfloops = [s for s in stuttering.states if stuttering.successors(s) == frozenset({s})]
        assert terminal_selfloops, "without restarts the terminal states must stutter"
