"""Tests for propositions, symbols and vocabularies."""

import pytest
from hypothesis import given, strategies as st

from repro.automata.alphabet import (
    EPSILON,
    Vocabulary,
    canonical,
    format_symbol,
    make_symbol,
    powerset_symbols,
)
from repro.errors import AutomatonError


class TestCanonical:
    def test_lowercases_and_underscores(self):
        assert canonical("Green Traffic Light") == "green_traffic_light"

    def test_strips_surrounding_whitespace(self):
        assert canonical("  stop sign ") == "stop_sign"

    def test_idempotent(self):
        assert canonical(canonical("Car From Left")) == "car_from_left"

    def test_rejects_empty(self):
        with pytest.raises(AutomatonError):
            canonical("")

    def test_rejects_non_string(self):
        with pytest.raises(AutomatonError):
            canonical(None)

    def test_rejects_embedded_negation(self):
        with pytest.raises(AutomatonError):
            canonical("!green")


class TestSymbols:
    def test_make_symbol_canonicalises(self):
        assert make_symbol(["Green Light", "stop sign"]) == frozenset({"green_light", "stop_sign"})

    def test_epsilon_is_empty(self):
        assert EPSILON == frozenset()

    def test_format_empty_symbol(self):
        assert format_symbol(frozenset()) == "ε"

    def test_format_sorts_members(self):
        assert format_symbol(frozenset({"b", "a"})) == "{a, b}"

    def test_powerset_size(self):
        symbols = list(powerset_symbols(["a", "b", "c"]))
        assert len(symbols) == 8

    def test_powerset_contains_empty_and_full(self):
        symbols = set(powerset_symbols(["a", "b"]))
        assert frozenset() in symbols
        assert frozenset({"a", "b"}) in symbols

    @given(st.sets(st.sampled_from(["a", "b", "c", "d"]), max_size=4))
    def test_powerset_members_are_subsets(self, props):
        for symbol in powerset_symbols(props):
            assert symbol <= frozenset(props)


class TestVocabulary:
    def test_all_atoms_union(self):
        vocab = Vocabulary(propositions=frozenset({"p"}), actions=frozenset({"a"}))
        assert vocab.all_atoms == frozenset({"p", "a"})

    def test_disjointness_enforced(self):
        with pytest.raises(AutomatonError):
            Vocabulary(propositions=frozenset({"x"}), actions=frozenset({"x"}))

    def test_is_proposition_uses_canonical_form(self):
        vocab = Vocabulary(propositions=frozenset({"green light"}))
        assert vocab.is_proposition("Green Light")
        assert not vocab.is_action("Green Light")

    def test_validate_symbol_rejects_unknown(self):
        vocab = Vocabulary(propositions=frozenset({"p"}), actions=frozenset({"a"}))
        with pytest.raises(AutomatonError):
            vocab.validate_symbol(["q"])

    def test_validate_symbol_disallow_actions(self):
        vocab = Vocabulary(propositions=frozenset({"p"}), actions=frozenset({"a"}))
        with pytest.raises(AutomatonError):
            vocab.validate_symbol(["a"], allow_actions=False)

    def test_merge_unions_both_sides(self):
        left = Vocabulary(propositions=frozenset({"p"}), actions=frozenset({"a"}))
        right = Vocabulary(propositions=frozenset({"q"}), actions=frozenset({"b"}))
        merged = left.merged_with(right)
        assert merged.propositions == frozenset({"p", "q"})
        assert merged.actions == frozenset({"a", "b"})

    def test_environment_and_action_parts(self):
        vocab = Vocabulary(propositions=frozenset({"p"}), actions=frozenset({"a"}))
        symbol = frozenset({"p", "a"})
        assert vocab.environment_part(symbol) == frozenset({"p"})
        assert vocab.action_part(symbol) == frozenset({"a"})
