"""Tests for the numpy layers and transformer (including gradient checks)."""

import numpy as np
import pytest

from repro.lm import Adam, ModelConfig, SGD, Tokenizer, TransformerLM
from repro.lm.layers import LayerNorm, Linear, causal_mask, softmax
from repro.errors import TrainingError
from repro.utils.rng import seeded_rng


def numeric_gradient(f, param, index, eps=1e-3):
    original = float(param.value[index])
    param.value[index] = original + eps
    up = f()
    param.value[index] = original - eps
    down = f()
    param.value[index] = original
    return (up - down) / (2 * eps)


@pytest.fixture()
def tiny_model() -> TransformerLM:
    config = ModelConfig(vocab_size=12, max_seq_len=10, dim=8, num_heads=2, num_layers=1, hidden_dim=16)
    return TransformerLM(config, seed=3)


@pytest.fixture()
def tiny_tokens() -> np.ndarray:
    return np.array([[1, 4, 5, 6, 2, 0, 0], [1, 7, 8, 9, 10, 2, 0]])


class TestLayers:
    def test_softmax_rows_sum_to_one(self, rng):
        x = rng.normal(size=(3, 5)).astype(np.float32)
        assert np.allclose(softmax(x).sum(axis=-1), 1.0, atol=1e-5)

    def test_linear_shapes(self, rng):
        layer = Linear(4, 6, seeded_rng(0))
        out = layer.forward(rng.normal(size=(2, 3, 4)).astype(np.float32))
        assert out.shape == (2, 3, 6)
        dx = layer.backward(np.ones_like(out))
        assert dx.shape == (2, 3, 4)

    def test_linear_backward_before_forward_raises(self):
        layer = Linear(4, 6, seeded_rng(0))
        with pytest.raises(TrainingError):
            layer.backward(np.ones((1, 1, 6)))

    def test_layernorm_normalises(self, rng):
        layer = LayerNorm(8)
        out = layer.forward(rng.normal(size=(2, 4, 8)).astype(np.float32))
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-4)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_lora_adapter_initially_identity(self, rng):
        layer = Linear(4, 4, seeded_rng(0))
        x = rng.normal(size=(1, 2, 4)).astype(np.float32)
        base = layer.forward(x).copy()
        layer.add_lora(2, seeded_rng(1))
        assert np.allclose(layer.forward(x), base)   # B starts at zero

    def test_lora_merge(self, rng):
        layer = Linear(4, 4, seeded_rng(0))
        layer.add_lora(2, seeded_rng(1))
        layer.lora_b.value[:] = 0.3
        x = rng.normal(size=(1, 2, 4)).astype(np.float32)
        with_adapter = layer.forward(x).copy()
        layer.merge_lora()
        assert not layer.has_lora
        assert np.allclose(layer.forward(x), with_adapter, atol=1e-5)

    def test_lora_rank_must_be_positive(self):
        layer = Linear(4, 4, seeded_rng(0))
        with pytest.raises(TrainingError):
            layer.add_lora(0, seeded_rng(1))


class TestCausalMaskCache:
    def test_mask_pattern_square_and_rectangular(self):
        square = causal_mask(3)
        assert square.tolist() == [
            [False, True, True],
            [False, False, True],
            [False, False, False],
        ]
        # Rectangular: 2 new queries against 5 total keys (KV-cached decode);
        # query row i may see keys 0 .. total - time + i.
        rect = causal_mask(2, 5)
        assert rect.tolist() == [
            [False, False, False, False, True],
            [False, False, False, False, False],
        ]

    def test_mask_is_cached_and_read_only(self):
        assert causal_mask(4) is causal_mask(4)
        assert causal_mask(4, 7) is causal_mask(4, 7)
        assert causal_mask(4) is not causal_mask(4, 5)
        with pytest.raises(ValueError):
            causal_mask(4)[0, 0] = True


class TestEffectiveWeightCache:
    def test_cache_reused_until_a_parameter_version_bumps(self):
        layer = Linear(4, 4, seeded_rng(0))
        layer.add_lora(2, seeded_rng(1))
        first = layer.effective_weight()
        assert layer.effective_weight() is first  # no re-materialisation
        layer.lora_b.value[:] = 0.25
        layer.lora_b.bump()
        second = layer.effective_weight()
        assert second is not first
        assert not np.allclose(second, first)

    def test_optimizer_step_invalidates_the_cache(self):
        layer = Linear(4, 4, seeded_rng(0))
        layer.add_lora(2, seeded_rng(1))
        x = np.ones((1, 2, 4), dtype=np.float32)
        cached = layer.effective_weight()
        optimizer = Adam(layer.parameters(), learning_rate=1e-2)
        optimizer.zero_grad()
        layer.backward(np.ones_like(layer.forward(x)))
        optimizer.step()
        assert layer.effective_weight() is not cached  # Adam bumped the versions

    def test_merge_lora_drops_the_cache(self):
        layer = Linear(4, 4, seeded_rng(0))
        layer.add_lora(2, seeded_rng(1))
        layer.lora_b.value[:] = 0.3
        layer.lora_b.bump()
        with_adapter = layer.effective_weight().copy()
        layer.merge_lora()
        assert np.allclose(layer.effective_weight(), with_adapter, atol=1e-5)

    def test_load_state_dict_bumps_versions(self, tiny_model):
        versions = {p.name: p.version for p in tiny_model.parameters()}
        tiny_model.load_state_dict(tiny_model.state_dict())
        assert all(p.version > versions[p.name] for p in tiny_model.parameters())


class TestTransformer:
    def test_forward_shape(self, tiny_model, tiny_tokens):
        logits = tiny_model.forward(tiny_tokens)
        assert logits.shape == (2, 7, 12)

    def test_sequence_too_long_raises(self, tiny_model):
        with pytest.raises(TrainingError):
            tiny_model.forward(np.zeros((1, 30), dtype=np.int64))

    def test_cross_entropy_decreases_with_training(self, tiny_model, tiny_tokens):
        optimizer = Adam(tiny_model.parameters(), learning_rate=5e-3)
        first = tiny_model.cross_entropy(tiny_tokens, pad_id=0, backward=False)
        for _ in range(30):
            optimizer.zero_grad()
            tiny_model.cross_entropy(tiny_tokens, pad_id=0, backward=True)
            optimizer.step()
        last = tiny_model.cross_entropy(tiny_tokens, pad_id=0, backward=False)
        assert last < first * 0.7

    def test_gradient_check_cross_entropy(self, tiny_model, tiny_tokens):
        tiny_model.zero_grad()
        tiny_model.cross_entropy(tiny_tokens, pad_id=0, backward=True)
        checked = 0
        for param in tiny_model.parameters()[::4]:
            index = np.unravel_index(np.argmax(np.abs(param.grad)), param.value.shape)
            numeric = numeric_gradient(
                lambda: tiny_model.cross_entropy(tiny_tokens, pad_id=0, backward=False), param, index
            )
            analytic = float(param.grad[index])
            assert numeric == pytest.approx(analytic, rel=0.05, abs=2e-3)
            checked += 1
        assert checked >= 3

    def test_sequence_log_probs_gradient_check(self, tiny_model, tiny_tokens):
        mask = (tiny_tokens[:, 1:] != 0).astype(np.float32)
        tiny_model.zero_grad()
        _, backward = tiny_model.sequence_log_probs_with_grad(tiny_tokens, mask)
        backward(np.ones(2))
        param = tiny_model.head.weight
        index = np.unravel_index(np.argmax(np.abs(param.grad)), param.value.shape)
        numeric = numeric_gradient(
            lambda: float(tiny_model.sequence_log_probs(tiny_tokens, mask).sum()), param, index
        )
        assert numeric == pytest.approx(float(param.grad[index]), rel=0.05, abs=2e-3)

    def test_clone_is_independent(self, tiny_model, tiny_tokens):
        clone = tiny_model.clone()
        before = clone.sequence_log_probs(tiny_tokens, np.ones((2, 6), dtype=np.float32))
        tiny_model.head.weight.value += 1.0
        after = clone.sequence_log_probs(tiny_tokens, np.ones((2, 6), dtype=np.float32))
        assert np.allclose(before, after)

    def test_lora_freezes_base(self, tiny_model):
        trainable = tiny_model.add_lora_adapters(2, seed=0)
        assert trainable < tiny_model.num_parameters()
        assert not tiny_model.head.weight.trainable
        assert tiny_model.head.lora_a.trainable

    def test_state_dict_roundtrip(self, tiny_model, tiny_tokens):
        state = tiny_model.state_dict()
        other = TransformerLM(tiny_model.config, seed=99)
        other.load_state_dict(state)
        mask = np.ones((2, 6), dtype=np.float32)
        assert np.allclose(
            tiny_model.sequence_log_probs(tiny_tokens, mask), other.sequence_log_probs(tiny_tokens, mask), atol=1e-5
        )

    def test_load_state_dict_shape_mismatch(self, tiny_model):
        state = tiny_model.state_dict()
        state["head.weight"] = np.zeros((2, 2))
        with pytest.raises(TrainingError):
            tiny_model.load_state_dict(state)

    def test_invalid_config(self):
        with pytest.raises(TrainingError):
            ModelConfig(vocab_size=0)
        with pytest.raises(TrainingError):
            ModelConfig(vocab_size=10, dim=10, num_heads=3)


class TestOptimizers:
    def test_adam_only_updates_trainable(self, tiny_model, tiny_tokens):
        tiny_model.add_lora_adapters(2, seed=0)
        frozen_before = tiny_model.head.weight.value.copy()
        optimizer = Adam(tiny_model.parameters(), learning_rate=1e-2)
        optimizer.zero_grad()
        tiny_model.cross_entropy(tiny_tokens, pad_id=0, backward=True)
        optimizer.step()
        assert np.allclose(tiny_model.head.weight.value, frozen_before)
        assert not np.allclose(tiny_model.head.lora_b.value, 0.0)

    def test_gradient_clipping(self, tiny_model, tiny_tokens):
        optimizer = Adam(tiny_model.parameters(), learning_rate=1e-3, max_grad_norm=1e-6)
        optimizer.zero_grad()
        tiny_model.cross_entropy(tiny_tokens, pad_id=0, backward=True)
        norm_before = optimizer.grad_norm()
        optimizer.clip_gradients()
        assert optimizer.grad_norm() <= 1e-6 + 1e-9
        assert norm_before > optimizer.grad_norm()

    def test_sgd_moves_parameters(self, tiny_model, tiny_tokens):
        optimizer = SGD(tiny_model.parameters(), learning_rate=1e-2)
        before = tiny_model.head.weight.value.copy()
        optimizer.zero_grad()
        tiny_model.cross_entropy(tiny_tokens, pad_id=0, backward=True)
        optimizer.step()
        assert not np.allclose(tiny_model.head.weight.value, before)

    def test_invalid_learning_rate(self, tiny_model):
        with pytest.raises(TrainingError):
            Adam(tiny_model.parameters(), learning_rate=0.0)


class TestTokenizer:
    def test_fit_encode_decode_roundtrip(self):
        tokenizer = Tokenizer.fit(["1. Observe the traffic light.\n2. Turn right."])
        ids = tokenizer.encode("1. Observe the traffic light.", add_bos=True, add_eos=True)
        assert ids[0] == tokenizer.bos_id and ids[-1] == tokenizer.eos_id
        text = tokenizer.decode(ids)
        assert "observe the traffic light" in text

    def test_unknown_words_map_to_unk(self):
        tokenizer = Tokenizer.fit(["hello world"])
        ids = tokenizer.encode("completely different words")
        assert all(i == tokenizer.unk_id for i in ids)

    def test_newlines_become_tokens(self):
        tokenizer = Tokenizer.fit(["a\nb"])
        ids = tokenizer.encode("a\nb")
        assert tokenizer.newline_id in ids

    def test_serialisation_roundtrip(self):
        tokenizer = Tokenizer.fit(["turn right at the light"])
        clone = Tokenizer.from_dict(tokenizer.to_dict())
        assert clone.encode("turn right") == tokenizer.encode("turn right")

    def test_unfitted_tokenizer_raises(self):
        with pytest.raises(TrainingError):
            Tokenizer().encode("anything")
