"""Tests for the batched KV-cache decode path and its determinism contract.

The load-bearing claims (see ``docs/lm.md``):

* ``forward_step`` over a KV cache produces **bitwise** the same logits as a
  full forward over the whole prefix — property-tested over random
  configurations drawn from the head_dim-16 kernel domain (every shipped
  config: ``dim = 16 × num_heads``);
* batched sampling is **token-identical** to the serial path for every lane,
  however many lanes ride along and whenever any of them retires;
* the window fallback past ``max_seq_len`` re-encodes trailing windows exactly
  as the serial path does.
"""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.lm import (
    DecodeState,
    LaneSpec,
    ModelConfig,
    Tokenizer,
    TransformerLM,
    sample_response_frontier,
    sample_responses,
    sample_responses_batched,
    sample_tokens,
    sample_tokens_batched,
    sample_tokens_cached,
)
from repro.utils.rng import spawn_lane_rngs


def random_config(rng: np.random.Generator) -> ModelConfig:
    """A random model inside the bitwise-stable kernel domain (head_dim 16)."""
    heads = int(rng.integers(1, 4))
    return ModelConfig(
        vocab_size=int(rng.integers(20, 90)),
        max_seq_len=int(rng.integers(12, 28)),
        dim=16 * heads,
        num_heads=heads,
        num_layers=int(rng.integers(1, 3)),
        hidden_dim=int(rng.integers(16, 64)),
    )


def random_lane_params(rng: np.random.Generator, vocab: int) -> dict:
    """Per-lane sampling knobs, sometimes greedy / top-k / early-stopping."""
    return {
        "max_new_tokens": int(rng.integers(1, 12)),
        "temperature": float(rng.choice([0.0, 0.7, 1.0, 1.3])),
        "top_k": int(rng.integers(2, vocab)) if rng.random() < 0.5 else None,
        "stop_ids": (int(rng.integers(0, vocab)),) if rng.random() < 0.5 else (),
    }


class TestForwardStep:
    def test_incremental_logits_match_full_forward_bitwise(self):
        """KV-cached logits equal full-prefix recompute to the last bit,
        across random configs, batch sizes and step chunkings."""
        rng = np.random.default_rng(7)
        for trial in range(6):
            config = random_config(rng)
            model = TransformerLM(config, seed=int(rng.integers(0, 1000)))
            batch = int(rng.integers(1, 5))
            total = int(rng.integers(4, config.max_seq_len + 1))
            tokens = rng.integers(0, config.vocab_size, size=(batch, total))
            state = DecodeState.for_model(model, batch)
            position = 0
            while position < total:
                step = min(int(rng.integers(1, 4)), total - position)
                step_logits = model.forward_step(tokens[:, position : position + step], state)
                position += step
                full = model.forward(tokens[:, :position])[:, -1, :]
                assert np.array_equal(step_logits, full), (
                    f"trial {trial}: logits diverged at position {position}"
                )
            assert state.length == total

    def test_forward_step_rejects_overflow_and_batch_mismatch(self):
        config = ModelConfig(vocab_size=11, max_seq_len=8, dim=16, num_heads=1, num_layers=1, hidden_dim=16)
        model = TransformerLM(config, seed=0)
        state = DecodeState.for_model(model, 2)
        model.forward_step(np.zeros((2, 6), dtype=np.int64), state)
        with pytest.raises(TrainingError):
            model.forward_step(np.zeros((2, 3), dtype=np.int64), state)  # 6 + 3 > 8
        with pytest.raises(TrainingError):
            model.forward_step(np.zeros((3, 1), dtype=np.int64), state)  # wrong batch
        with pytest.raises(TrainingError):
            model.forward_step(np.zeros((2, 0), dtype=np.int64), state)  # no new tokens

    def test_select_keeps_surviving_lane_bits(self):
        config = ModelConfig(vocab_size=13, max_seq_len=10, dim=16, num_heads=1, num_layers=2, hidden_dim=16)
        model = TransformerLM(config, seed=1)
        tokens = np.random.default_rng(0).integers(0, 13, size=(4, 5))
        state = DecodeState.for_model(model, 4)
        model.forward_step(tokens, state)
        snapshot = [(kv.k.copy(), kv.v.copy()) for kv in state.layers]
        state.select([0, 2])
        assert state.batch == 2
        for kv, (k, v) in zip(state.layers, snapshot):
            assert np.array_equal(kv.k, k[[0, 2]])
            assert np.array_equal(kv.v, v[[0, 2]])


class TestBatchedTokenIdentity:
    def test_batched_matches_serial_across_lane_counts(self):
        """The core contract: every lane's tokens equal the serial path's,
        for 1, 2, 5 and 12 lanes of mixed prompts/temperatures/budgets."""
        rng = np.random.default_rng(3)
        config = random_config(rng)
        model = TransformerLM(config, seed=5)
        for lane_count in (1, 2, 5, 12):
            prompts = [
                list(rng.integers(0, config.vocab_size, size=int(rng.integers(2, max(3, config.max_seq_len // 2)))))
                for _ in range(lane_count)
            ]
            params = [random_lane_params(rng, config.vocab_size) for _ in range(lane_count)]
            serial = [
                sample_tokens(model, prompt, seed=lane_rng, **kwargs)
                for prompt, kwargs, lane_rng in zip(prompts, params, spawn_lane_rngs(123, lane_count))
            ]
            lanes = [
                LaneSpec(prompt_ids=tuple(prompt), rng=lane_rng, **kwargs)
                for prompt, kwargs, lane_rng in zip(prompts, params, spawn_lane_rngs(123, lane_count))
            ]
            assert sample_tokens_batched(model, lanes) == serial

    def test_retired_lanes_do_not_perturb_survivors(self):
        """A lane's output is independent of its companions: short-budget
        lanes retire mid-wave and the long lane still matches decoding alone."""
        rng = np.random.default_rng(11)
        config = random_config(rng)
        model = TransformerLM(config, seed=2)
        prompt = tuple(int(t) for t in rng.integers(0, config.vocab_size, size=4))

        def lane(budget, lane_rng):
            return LaneSpec(prompt_ids=prompt, rng=lane_rng, max_new_tokens=budget, temperature=1.0)

        alone = sample_tokens_batched(model, [lane(10, spawn_lane_rngs(77, 1)[0])])[0]
        rngs = spawn_lane_rngs(77, 1) + spawn_lane_rngs(99, 3)
        crowd = sample_tokens_batched(
            model,
            [lane(10, rngs[0]), lane(1, rngs[1]), lane(3, rngs[2]), lane(6, rngs[3])],
        )
        assert crowd[0] == alone
        assert [len(tokens) for tokens in crowd[1:]] == [1, 3, 6]

    def test_zero_budget_lane_consumes_nothing(self):
        """max_new_tokens=0 lanes return [] without drawing RNG or stalling
        the group — exactly like the serial loop that never runs."""
        config = ModelConfig(vocab_size=17, max_seq_len=12, dim=16, num_heads=1, num_layers=1, hidden_dim=16)
        model = TransformerLM(config, seed=3)
        prompt = (1, 2, 3)
        live_rng, zero_rng = spawn_lane_rngs(5, 2)
        results = sample_tokens_batched(
            model,
            [
                LaneSpec(prompt_ids=prompt, rng=live_rng, max_new_tokens=4),
                LaneSpec(prompt_ids=prompt, rng=zero_rng, max_new_tokens=0),
            ],
        )
        assert results[1] == []
        assert results[0] == sample_tokens(model, list(prompt), max_new_tokens=4, seed=spawn_lane_rngs(5, 2)[0])

    def test_sample_tokens_cached_is_a_drop_in(self):
        rng = np.random.default_rng(19)
        config = random_config(rng)
        model = TransformerLM(config, seed=4)
        prompt = list(rng.integers(0, config.vocab_size, size=5))
        kwargs = {"max_new_tokens": 9, "temperature": 0.9, "top_k": 5, "stop_ids": (2,)}
        assert sample_tokens_cached(model, prompt, seed=42, **kwargs) == sample_tokens(
            model, prompt, seed=42, **kwargs
        )


class TestWindowFallback:
    def test_decode_past_max_seq_len_matches_serial(self):
        """Once the context hits max_seq_len the KV cache is invalid (absolute
        positions); the fallback re-encodes trailing windows exactly like the
        serial path, so tokens stay identical across the boundary."""
        config = ModelConfig(vocab_size=23, max_seq_len=10, dim=16, num_heads=1, num_layers=2, hidden_dim=24)
        model = TransformerLM(config, seed=6)
        rng = np.random.default_rng(1)
        for prompt_len in (6, 10, 14):  # inside, at, and beyond the window
            prompt = list(rng.integers(0, config.vocab_size, size=prompt_len))
            serial = sample_tokens(model, prompt, max_new_tokens=12, seed=spawn_lane_rngs(8, 1)[0])
            batched = sample_tokens_batched(
                model,
                [LaneSpec(prompt_ids=tuple(prompt), rng=spawn_lane_rngs(8, 1)[0], max_new_tokens=12)],
            )[0]
            assert batched == serial, f"prompt_len={prompt_len}"


class TestDecodeSpans:
    def test_wave_and_step_spans_are_emitted(self):
        """One lm.batch_wave per lane group; one lm.decode_step per batched
        model call (prefill included), all visible in the stage breakdown."""
        from repro.obs import tracer as obs
        from repro.obs.report import stage_breakdown
        from repro.obs.tracer import Tracer

        config = ModelConfig(vocab_size=17, max_seq_len=12, dim=16, num_heads=1, num_layers=1, hidden_dim=16)
        model = TransformerLM(config, seed=3)
        tracer = obs.install_tracer(Tracer())
        try:
            sample_tokens_batched(
                model,
                [LaneSpec(prompt_ids=(1, 2, 3), rng=spawn_lane_rngs(0, 1)[0], max_new_tokens=4)],
            )
        finally:
            obs.uninstall_tracer()
        names = [span.name for span in tracer.spans()]
        assert names.count("lm.batch_wave") == 1
        assert names.count("lm.decode_step") == 4  # prefill + 3 steps (4th draw retires the lane)
        wave = next(span for span in tracer.spans() if span.name == "lm.batch_wave")
        assert wave.attributes["lanes"] == 1
        assert wave.attributes["prompt_tokens"] == 3
        prefill = next(span for span in tracer.spans() if span.name == "lm.decode_step")
        assert prefill.attributes["prefill"] is True
        breakdown = stage_breakdown(tracer.spans())
        assert breakdown["lm.batch_wave"]["count"] == 1
        assert breakdown["lm.decode_step"]["count"] == 4


class TestResponseFrontier:
    @pytest.fixture(scope="class")
    def text_model(self):
        tokenizer = Tokenizer.fit(
            [
                'Steps for "turn right" :',
                "1. observe the light.\n2. if green, turn right.",
                "1. stop at the sign.\n2. go when clear.",
            ]
        )
        config = ModelConfig(vocab_size=tokenizer.vocab_size, max_seq_len=32, dim=16, num_heads=1, num_layers=1, hidden_dim=24)
        return TransformerLM(config, seed=9), tokenizer

    def test_sample_responses_batched_matches_serial(self, text_model):
        model, tokenizer = text_model
        prompt = 'Steps for "turn right" :'
        serial = sample_responses(model, tokenizer, prompt, 3, max_new_tokens=16, seed=21)
        batched = sample_responses_batched(model, tokenizer, prompt, 3, max_new_tokens=16, seed=21)
        assert batched == serial

    def test_frontier_matches_per_prompt_serial_loop(self, text_model):
        """The pipeline contract: one shared rng walked prompt by prompt gives
        the same text as the whole frontier decoded in one wave."""
        model, tokenizer = text_model
        prompts = ['Steps for "turn right" :', "1. stop at the sign.", 'Steps for "turn right" :']
        counts = [2, 3, 0]
        serial_rng = np.random.default_rng(31)
        serial = [
            sample_responses(model, tokenizer, prompt, count, max_new_tokens=12, seed=serial_rng)
            for prompt, count in zip(prompts, counts)
        ]
        batched = sample_response_frontier(
            model, tokenizer, prompts, counts, max_new_tokens=12, rng=np.random.default_rng(31)
        )
        assert batched == serial
        assert batched[2] == []

    def test_frontier_rejects_mismatched_lengths(self, text_model):
        model, tokenizer = text_model
        with pytest.raises(ValueError):
            sample_response_frontier(model, tokenizer, ["a", "b"], [1])
