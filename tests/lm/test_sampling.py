"""Tests for the sampling draw helpers and per-lane RNG spawning."""

import numpy as np
import pytest

from repro.lm import sample_from_logits, top_k_filter
from repro.lm.layers import softmax
from repro.utils.rng import seeded_rng, spawn_lane_rngs


class TestTopKFilter:
    def test_keeps_exactly_k_without_ties(self):
        scaled = np.array([0.1, 3.0, 2.0, -1.0, 5.0], dtype=np.float32)
        out = top_k_filter(scaled, 2)
        assert int(np.count_nonzero(out > -1e29)) == 2
        assert out[4] == scaled[4] and out[1] == scaled[1]

    def test_tie_at_cutoff_keeps_exactly_k(self):
        """Regression: the sort-based filter kept *every* tie at the cutoff,
        inflating the kept set past k.  Ties survive lowest-index-first."""
        scaled = np.array([2.0, 1.0, 1.0, 1.0, 0.5], dtype=np.float32)
        out = top_k_filter(scaled, 3)
        kept = np.flatnonzero(out > -1e29)
        assert kept.tolist() == [0, 1, 2]  # the index-3 tie is cut

    def test_all_equal_logits(self):
        out = top_k_filter(np.zeros(6, dtype=np.float32), 4)
        assert np.flatnonzero(out > -1e29).tolist() == [0, 1, 2, 3]

    def test_k_equal_to_vocab_keeps_everything(self):
        scaled = np.array([1.0, -2.0, 0.5], dtype=np.float32)
        assert np.array_equal(top_k_filter(scaled, 3), scaled)

    def test_filtered_mass_is_negligible_after_softmax(self):
        probabilities = softmax(top_k_filter(np.array([4.0, 3.0, 2.0, 1.0], dtype=np.float32), 2))
        assert probabilities[2] == 0.0 and probabilities[3] == 0.0
        assert probabilities.sum() == pytest.approx(1.0)


class TestSampleFromLogits:
    def test_zero_temperature_is_greedy(self):
        logits = np.array([0.0, 2.0, 1.0], dtype=np.float32)
        assert sample_from_logits(logits, seeded_rng(0), temperature=0.0, top_k=None) == 1

    def test_top_k_one_is_greedy_for_any_draw(self):
        logits = np.array([0.0, 2.0, 1.0], dtype=np.float32)
        for seed in range(5):
            assert sample_from_logits(logits, seeded_rng(seed), temperature=1.0, top_k=1) == 1

    def test_identical_rng_state_gives_identical_token(self):
        logits = np.random.default_rng(0).normal(size=40).astype(np.float32)
        a = sample_from_logits(logits, seeded_rng(7), temperature=1.0, top_k=10)
        b = sample_from_logits(logits, seeded_rng(7), temperature=1.0, top_k=10)
        assert a == b


class TestSpawnLaneRngs:
    def test_same_seed_spawns_identical_families(self):
        first = [r.integers(0, 1 << 30) for r in spawn_lane_rngs(5, 3)]
        second = [r.integers(0, 1 << 30) for r in spawn_lane_rngs(5, 3)]
        assert first == second

    def test_live_generator_advances_spawn_counter(self):
        """Two calls on one live generator give disjoint families — the
        property that makes per-task spawns line up between the serial loop
        and the batched frontier."""
        rng = seeded_rng(5)
        first = [r.integers(0, 1 << 30) for r in spawn_lane_rngs(rng, 2)]
        second = [r.integers(0, 1 << 30) for r in spawn_lane_rngs(rng, 2)]
        assert first != second
        replay = seeded_rng(5)
        assert [r.integers(0, 1 << 30) for r in spawn_lane_rngs(replay, 2)] == first
        assert [r.integers(0, 1 << 30) for r in spawn_lane_rngs(replay, 2)] == second

    def test_zero_count_is_a_no_op_on_the_stream(self):
        rng_a, rng_b = seeded_rng(3), seeded_rng(3)
        assert spawn_lane_rngs(rng_a, 0) == []
        assert [r.integers(0, 1 << 30) for r in spawn_lane_rngs(rng_a, 2)] == [
            r.integers(0, 1 << 30) for r in spawn_lane_rngs(rng_b, 2)
        ]

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_lane_rngs(0, -1)
