"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.automata import FSAController, TransitionSystem, Vocabulary
from repro.driving import all_specifications, core_specifications, task_by_name
from repro.driving.responses import response_templates
from repro.glm2fsa import build_controller_from_text


@pytest.fixture(scope="session")
def simple_vocabulary() -> Vocabulary:
    """A two-proposition / two-action vocabulary used by many unit tests."""
    return Vocabulary(propositions=frozenset({"green", "ped"}), actions=frozenset({"go", "stop"}))


@pytest.fixture(scope="session")
def simple_model(simple_vocabulary) -> TransitionSystem:
    """A three-state fully connected world model over the simple vocabulary."""
    model = TransitionSystem(name="simple", vocabulary=simple_vocabulary)
    model.add_state("g", ["green"], initial=True)
    model.add_state("r", [], initial=True)
    model.add_state("p", ["ped"], initial=True)
    for src in ("g", "r", "p"):
        for dst in ("g", "r", "p"):
            model.add_transition(src, dst)
    return model


@pytest.fixture(scope="session")
def safe_controller(simple_vocabulary) -> FSAController:
    """Goes only on green without pedestrians; stops otherwise."""
    controller = FSAController(name="safe", vocabulary=simple_vocabulary)
    controller.add_state("q0", initial=True)
    controller.add_transition("q0", "green & !ped", "go", "q0")
    controller.add_transition("q0", "!green | ped", "stop", "q0")
    return controller


@pytest.fixture(scope="session")
def reckless_controller(simple_vocabulary) -> FSAController:
    """Always goes, regardless of the light or pedestrians."""
    controller = FSAController(name="reckless", vocabulary=simple_vocabulary)
    controller.add_state("q0", initial=True)
    controller.add_transition("q0", "true", "go", "q0")
    return controller


@pytest.fixture(scope="session")
def driving_specs() -> dict:
    """The full 15-specification rule book."""
    return all_specifications()


@pytest.fixture(scope="session")
def core_specs() -> dict:
    """Φ1 ... Φ5."""
    return core_specifications()


@pytest.fixture(scope="session")
def right_turn_task():
    return task_by_name("turn_right_traffic_light")


@pytest.fixture(scope="session")
def right_turn_good_controller(right_turn_task):
    text = response_templates(right_turn_task.name, "compliant")[0]
    return build_controller_from_text(text, task=right_turn_task.name, name="right_turn_good")


@pytest.fixture(scope="session")
def right_turn_bad_controller(right_turn_task):
    text = response_templates(right_turn_task.name, "flawed")[0]
    return build_controller_from_text(text, task=right_turn_task.name, name="right_turn_bad")


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
