"""Documentation smoke checks — tier-1, so the docs cannot silently rot.

Structural only: these tests assert that the documentation files exist and
still mention the entry points they exist to explain, and that every public
symbol of :mod:`repro.serving`, :mod:`repro.feedback.ranker`,
:mod:`repro.dpo.stream`, :mod:`repro.obs` and :mod:`repro.analysis` carries a
docstring.  Content quality is reviewed by humans; absence is caught here.
"""

import inspect
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestDocumentationFiles:
    def test_readme_exists_and_covers_the_essentials(self):
        readme = REPO_ROOT / "README.md"
        assert readme.is_file(), "top-level README.md is missing"
        text = readme.read_text()
        for needle in (
            "examples/quickstart.py",       # quickstart entry point
            "python -m pytest -x -q",       # tier-1 command
            "python -m pytest benchmarks",  # benchmark command
            "repro.serving",                # module map names the serving layer
            "repro-serve",                  # CLI entry point
        ):
            assert needle in text, f"README.md no longer mentions {needle!r}"

    def test_serving_architecture_guide_exists(self):
        guide = REPO_ROOT / "docs" / "serving.md"
        assert guide.is_file(), "docs/serving.md is missing"
        text = guide.read_text()
        for needle in (
            "CacheDirectory",
            "WorkerPool",
            "submit_batch",
            "max_inflight_batches",  # the back-pressure knobs are documented
            "Dispatcher",
            "repro-serve",
        ):
            assert needle in text, f"docs/serving.md no longer documents {needle!r}"

    def test_pipeline_streaming_guide_exists(self):
        guide = REPO_ROOT / "docs" / "pipeline.md"
        assert guide.is_file(), "docs/pipeline.md is missing"
        text = guide.read_text()
        for needle in (
            "PairStream",
            "DPODatasetWriter",
            "DatasetHandle",
            "stream_training",
            "stream_warmup_fraction",    # the warm-up knob is documented
            "first_trainable_pair_seconds",
            "Determinism",               # the guarantees section survives
            "pairs-output",
        ):
            assert needle in text, f"docs/pipeline.md no longer documents {needle!r}"
        readme = (REPO_ROOT / "README.md").read_text()
        assert "docs/pipeline.md" in readme, "README.md no longer links the pipeline guide"

    def test_analysis_guide_exists(self):
        guide = REPO_ROOT / "docs" / "analysis.md"
        assert guide.is_file(), "docs/analysis.md is missing"
        text = guide.read_text()
        for needle in (
            "atomic-write",
            "falsy-default",
            "unguarded-shared-mutation",
            "rebind-shared-container",
            "nondeterministic-iteration",
            "swallowed-exception",
            "repro: allow[",             # the suppression syntax is documented
            "Origin",                    # every rule names its originating bug
            "lock-order",                # the analyzer walkthrough survives
            "repro-lint",
            "make lint",
        ):
            assert needle in text, f"docs/analysis.md no longer documents {needle!r}"
        readme = (REPO_ROOT / "README.md").read_text()
        assert "docs/analysis.md" in readme, "README.md no longer links the analysis guide"

    def test_jobs_guide_exists(self):
        guide = REPO_ROOT / "docs" / "jobs.md"
        assert guide.is_file(), "docs/jobs.md is missing"
        text = guide.read_text()
        for needle in (
            "JobsDaemon",
            "JobsClient",
            "JobStore",
            "QuotaLedger",
            "journal.jsonl",            # the durability format is documented
            "snapshot",
            "exactly one",              # the exactly-once invariant survives
            "stream_progress",
            "quota-exceeded",           # typed rejections are documented
            "repro-serve daemon",
            "byte-identical",           # parity with the one-shot path
            "make jobs-demo",
        ):
            assert needle in text, f"docs/jobs.md no longer documents {needle!r}"
        readme = (REPO_ROOT / "README.md").read_text()
        assert "docs/jobs.md" in readme, "README.md no longer links the jobs guide"

    def test_modelcheck_guide_exists(self):
        guide = REPO_ROOT / "docs" / "modelcheck.md"
        assert guide.is_file(), "docs/modelcheck.md is missing"
        text = guide.read_text()
        for needle in (
            "accepting lasso",          # the emptiness algorithm is explained
            "BuchiMemo",
            "formula_key",              # memo keying
            "prune_automaton",
            "Soundness argument",       # the pruning soundness section survives
            "automata_cache_dir",       # cache dir layout + wiring
            "FASTPATH_SCHEMA_VERSION",
            "NaiveModelChecker",
            "mc.construct_cached",      # honest span attribution is documented
            "verify_controller_at_least",  # the early-exit mode
            "satisfaction_ratio",       # the vacuous-true decision is recorded
            "test_differential",
            "slow",                     # the fuzz marker is documented
            "make bench-modelcheck",
        ):
            assert needle in text, f"docs/modelcheck.md no longer documents {needle!r}"
        readme = (REPO_ROOT / "README.md").read_text()
        assert "docs/modelcheck.md" in readme, "README.md no longer links the modelcheck guide"

    def test_lm_guide_exists(self):
        guide = REPO_ROOT / "docs" / "lm.md"
        assert guide.is_file(), "docs/lm.md is missing"
        text = guide.read_text()
        for needle in (
            "DecodeState",
            "LaneSpec",
            "forward_step",
            "sample_response_frontier",
            "batched_sampling",          # the pipeline switch is documented
            "token-identical",           # the determinism contract survives
            "spawn_lane_rngs",
            "head_dim = 16",             # the kernel-domain caveat is honest
            "max_seq_len",               # the window fallback is documented
            "stack_pair_batch",          # fused DPO
            "effective_weight",
            "Parameter.bump",            # the in-place-mutation contract
            "top_k_filter",
            "lm.batch_wave",             # span names
            "lm.decode_step",
            "make bench-lm",
        ):
            assert needle in text, f"docs/lm.md no longer documents {needle!r}"
        readme = (REPO_ROOT / "README.md").read_text()
        assert "docs/lm.md" in readme, "README.md no longer links the LM guide"

    def test_observability_guide_exists(self):
        guide = REPO_ROOT / "docs" / "observability.md"
        assert guide.is_file(), "docs/observability.md is missing"
        text = guide.read_text()
        for needle in (
            "NullTracer",             # the zero-cost off switch is documented
            "trace_path",             # PipelineConfig wiring
            "repro-trace",            # the report CLI
            "mc.construct",           # the span-name reference survives
            "per-PID",                # worker shard mechanism
            "MetricsRegistry",
            "make trace-demo",
            "Perfetto",
        ):
            assert needle in text, f"docs/observability.md no longer documents {needle!r}"
        readme = (REPO_ROOT / "README.md").read_text()
        assert "docs/observability.md" in readme, (
            "README.md no longer links the observability guide"
        )


def _public_symbols(module):
    for name in module.__all__:
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


class TestPublicApiDocstrings:
    def test_every_public_serving_symbol_has_a_docstring(self):
        import repro.serving as serving

        undocumented = [
            name
            for name, obj in _public_symbols(serving)
            if not (obj.__doc__ or "").strip()
        ]
        assert not undocumented, f"repro.serving symbols missing docstrings: {undocumented}"

    def test_serving_public_methods_are_documented(self):
        """The symbols users actually call: public methods need docstrings too."""
        from repro.serving import CacheDirectory, Dispatcher, FeedbackService, PendingBatch

        for cls in (FeedbackService, PendingBatch, CacheDirectory, Dispatcher):
            undocumented = [
                f"{cls.__name__}.{name}"
                for name, member in vars(cls).items()
                if not name.startswith("_")
                and (inspect.isfunction(member) or isinstance(member, property))
                and not (
                    (member.fget.__doc__ if isinstance(member, property) else member.__doc__)
                    or ""
                ).strip()
            ]
            assert not undocumented, f"undocumented public methods: {undocumented}"

    def test_serving_config_documents_every_field(self):
        """ServingConfig's docstring is its field reference — a field added
        without a matching Parameters entry is undocumented API."""
        from repro.serving import ServingConfig
        import dataclasses

        doc = ServingConfig.__doc__ or ""
        missing = [
            field.name for field in dataclasses.fields(ServingConfig) if field.name not in doc
        ]
        assert not missing, f"ServingConfig fields absent from its docstring: {missing}"

    def test_every_public_dpo_stream_symbol_has_a_docstring(self):
        import repro.dpo.stream as stream

        undocumented = [
            name
            for name in dir(stream)
            if not name.startswith("_")
            and getattr(getattr(stream, name), "__module__", None) == stream.__name__
            and not (getattr(stream, name).__doc__ or "").strip()
        ]
        assert not undocumented, f"repro.dpo.stream symbols missing docstrings: {undocumented}"

    def test_stream_public_methods_are_documented(self):
        from repro.dpo.stream import DatasetHandle, DPODatasetWriter, PairStream

        for cls in (PairStream, DatasetHandle, DPODatasetWriter):
            undocumented = [
                f"{cls.__name__}.{name}"
                for name, member in vars(cls).items()
                if not name.startswith("_")
                and (inspect.isfunction(member) or isinstance(member, property))
                and not (
                    (member.fget.__doc__ if isinstance(member, property) else member.__doc__)
                    or ""
                ).strip()
            ]
            assert not undocumented, f"undocumented public methods: {undocumented}"

    def test_every_public_jobs_symbol_has_a_docstring(self):
        import repro.jobs as jobs

        undocumented = [
            name
            for name in jobs.__all__
            if not isinstance(getattr(jobs, name), (str, tuple, frozenset, dict))
            and not (getattr(jobs, name).__doc__ or "").strip()
        ]
        assert not undocumented, f"repro.jobs symbols missing docstrings: {undocumented}"

    def test_jobs_public_methods_are_documented(self):
        from repro.jobs import Batch, Job, JobsClient, JobsDaemon, JobStore, QuotaLedger

        for cls in (Job, Batch, JobStore, QuotaLedger, JobsDaemon, JobsClient):
            undocumented = [
                f"{cls.__name__}.{name}"
                for name, member in vars(cls).items()
                if not name.startswith("_")
                and (inspect.isfunction(member) or isinstance(member, property))
                and not (
                    (member.fget.__doc__ if isinstance(member, property) else member.__doc__)
                    or ""
                ).strip()
            ]
            assert not undocumented, f"undocumented public methods: {undocumented}"

    def test_every_public_decode_symbol_has_a_docstring(self):
        import repro.lm.decode as decode

        undocumented = [
            name
            for name in dir(decode)
            if not name.startswith("_")
            and getattr(getattr(decode, name), "__module__", None) == decode.__name__
            and not (getattr(decode, name).__doc__ or "").strip()
        ]
        assert not undocumented, f"repro.lm.decode symbols missing docstrings: {undocumented}"

    def test_decode_public_methods_are_documented(self):
        import inspect as _inspect

        from repro.lm.decode import DecodeState, LaneSpec, LayerKV

        for cls in (DecodeState, LaneSpec, LayerKV):
            undocumented = [
                f"{cls.__name__}.{name}"
                for name, member in vars(cls).items()
                if not name.startswith("_")
                and (_inspect.isfunction(member) or isinstance(member, (property, classmethod)))
                and not (
                    (
                        member.fget.__doc__
                        if isinstance(member, property)
                        else member.__func__.__doc__
                        if isinstance(member, classmethod)
                        else member.__doc__
                    )
                    or ""
                ).strip()
            ]
            assert not undocumented, f"undocumented public methods: {undocumented}"

    def test_every_public_obs_symbol_has_a_docstring(self):
        import repro.obs as obs_package

        undocumented = [
            name
            for name in obs_package.__all__
            if not (getattr(obs_package, name).__doc__ or "").strip()
        ]
        assert not undocumented, f"repro.obs symbols missing docstrings: {undocumented}"

    def test_obs_public_methods_are_documented(self):
        from repro.obs import Histogram, MetricsRegistry, NullTracer, Span, Tracer

        for cls in (Tracer, NullTracer, Span, MetricsRegistry, Histogram):
            undocumented = [
                f"{cls.__name__}.{name}"
                for name, member in vars(cls).items()
                if not name.startswith("_")
                and (inspect.isfunction(member) or isinstance(member, property))
                and not (
                    (member.fget.__doc__ if isinstance(member, property) else member.__doc__)
                    or ""
                ).strip()
            ]
            assert not undocumented, f"undocumented public methods: {undocumented}"

    def test_every_public_analysis_symbol_has_a_docstring(self):
        import repro.analysis as analysis

        undocumented = [
            name
            for name in analysis.__all__
            if not (getattr(analysis, name).__doc__ or "").strip()
        ]
        assert not undocumented, f"repro.analysis symbols missing docstrings: {undocumented}"

    def test_analysis_public_methods_are_documented(self):
        from repro.analysis import AnalysisReport, Finding, LockOrderAnalyzer
        from repro.analysis.rules import DEFAULT_RULES

        for cls in (Finding, AnalysisReport, LockOrderAnalyzer, *DEFAULT_RULES):
            undocumented = [
                f"{cls.__name__}.{name}"
                for name, member in vars(cls).items()
                if not name.startswith("_")
                and (inspect.isfunction(member) or isinstance(member, property))
                and not (
                    (member.fget.__doc__ if isinstance(member, property) else member.__doc__)
                    or ""
                ).strip()
            ]
            assert not undocumented, f"undocumented public methods: {undocumented}"

    def test_every_rule_is_catalogued_in_the_guide(self):
        """docs/analysis.md is the rule reference: a rule shipped without a
        catalogue entry is undocumented API."""
        from repro.analysis.rules import default_rules

        text = (REPO_ROOT / "docs" / "analysis.md").read_text()
        missing = [rule.rule_id for rule in default_rules() if f"`{rule.rule_id}`" not in text]
        assert not missing, f"rules absent from docs/analysis.md: {missing}"

    def test_every_public_ranker_symbol_has_a_docstring(self):
        import repro.feedback.ranker as ranker

        names = [
            name
            for name in dir(ranker)
            if not name.startswith("_")
            and getattr(getattr(ranker, name), "__module__", None) == ranker.__name__
        ]
        assert "rank_to_pairs" in names and "PreferencePair" in names
        undocumented = [
            name for name in names if not (getattr(ranker, name).__doc__ or "").strip()
        ]
        assert not undocumented, f"repro.feedback.ranker symbols missing docstrings: {undocumented}"

    def test_every_public_modelcheck_symbol_has_a_docstring(self):
        import repro.modelcheck as modelcheck

        undocumented = [
            name
            for name, obj in _public_symbols(modelcheck)
            if not (obj.__doc__ or "").strip()
        ]
        assert not undocumented, f"repro.modelcheck symbols missing docstrings: {undocumented}"

    def test_modelcheck_public_methods_are_documented(self):
        from repro.modelcheck import BuchiMemo, CachedAutomaton, ModelChecker, ResultCache

        for cls in (ModelChecker, BuchiMemo, CachedAutomaton, ResultCache):
            undocumented = [
                f"{cls.__name__}.{name}"
                for name, member in vars(cls).items()
                if not name.startswith("_")
                and (inspect.isfunction(member) or isinstance(member, property))
                and not (
                    (member.fget.__doc__ if isinstance(member, property) else member.__doc__)
                    or ""
                ).strip()
            ]
            assert not undocumented, f"undocumented public methods: {undocumented}"

    def test_module_docstrings_present(self):
        import repro.analysis
        import repro.analysis.cli
        import repro.analysis.engine
        import repro.analysis.locks
        import repro.analysis.rules
        import repro.serving
        import repro.serving.backends
        import repro.serving.cache
        import repro.serving.cli
        import repro.serving.config
        import repro.serving.dedup
        import repro.serving.metrics
        import repro.serving.scheduler
        import repro.feedback.ranker
        import repro.dpo.stream
        import repro.lm.decode
        import repro.lm.sampling
        import repro.modelcheck
        import repro.modelcheck.checker
        import repro.modelcheck.fastpath
        import repro.obs
        import repro.obs.cli
        import repro.obs.export
        import repro.obs.metrics
        import repro.obs.report
        import repro.obs.tracer

        import repro.jobs
        import repro.jobs.cli
        import repro.jobs.client
        import repro.jobs.models
        import repro.jobs.quota
        import repro.jobs.server
        import repro.jobs.store
        import repro.utils.atomic
        import repro.utils.retry

        for module in (
            repro.jobs,
            repro.jobs.cli,
            repro.jobs.client,
            repro.jobs.models,
            repro.jobs.quota,
            repro.jobs.server,
            repro.jobs.store,
            repro.utils.retry,
            repro.analysis,
            repro.analysis.cli,
            repro.analysis.engine,
            repro.analysis.locks,
            repro.analysis.rules,
            repro.utils.atomic,
            repro.serving,
            repro.serving.backends,
            repro.serving.cache,
            repro.serving.cli,
            repro.serving.config,
            repro.serving.dedup,
            repro.serving.metrics,
            repro.serving.scheduler,
            repro.feedback.ranker,
            repro.dpo.stream,
            repro.lm.decode,
            repro.lm.sampling,
            repro.modelcheck,
            repro.modelcheck.checker,
            repro.modelcheck.fastpath,
            repro.obs,
            repro.obs.cli,
            repro.obs.export,
            repro.obs.metrics,
            repro.obs.report,
            repro.obs.tracer,
        ):
            assert (module.__doc__ or "").strip(), f"{module.__name__} has no module docstring"
