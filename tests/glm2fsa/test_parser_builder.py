"""Tests for semantic parsing and GLM2FSA controller construction."""

import pytest

from repro.automata import build_product
from repro.driving import task_by_name
from repro.errors import AlignmentError
from repro.glm2fsa import (
    ActionStep,
    ConditionalStep,
    ObserveStep,
    build_controller,
    build_controller_from_text,
    parse_response,
    parse_step,
    strip_numbering,
)
from repro.modelcheck import ModelChecker

RIGHT_TURN_BEFORE = (
    "1. Look straight ahead and watch for the traffic light.\n"
    "2. If the traffic light turns green, start moving forward.\n"
    "3. As you approach the intersection, look to your left for oncoming traffic.\n"
    "4. If there is no traffic from your left, check pedestrians on your right.\n"
    "5. If it is safe, turn your vehicle right."
)


class TestSemanticParser:
    def test_strip_numbering(self):
        assert strip_numbering("3. Turn right.") == "Turn right."
        assert strip_numbering("12) stop") == "stop"

    def test_observe_step(self):
        step = parse_step("Observe the traffic light.")
        assert isinstance(step, ObserveStep)
        assert step.propositions == ("green_traffic_light",)

    def test_action_step(self):
        step = parse_step("Turn right.")
        assert isinstance(step, ActionStep)
        assert step.action == "turn_right"

    def test_conditional_step_guard(self):
        step = parse_step("If there is no car from the left and no pedestrian at right, turn right.")
        assert isinstance(step, ConditionalStep)
        guard = step.condition.to_guard()
        assert guard.evaluate(frozenset())
        assert not guard.evaluate(frozenset({"car_from_left"}))
        assert step.action == "turn_right"

    def test_conditional_observation(self):
        step = parse_step("If there is no car from the left, check the pedestrian at right.")
        assert isinstance(step, ConditionalStep)
        assert step.action is None
        assert step.observed == ("pedestrian_at_right",)

    def test_parse_response_counts_steps(self):
        parsed = parse_response(RIGHT_TURN_BEFORE, task="turn right")
        assert len(parsed) == 5

    def test_parse_response_skips_unalignable_lines(self):
        text = "1. Be careful out there.\n2. Turn right."
        parsed = parse_response(text)
        assert len(parsed) == 1

    def test_aligned_input_mode(self):
        parsed = parse_response("1. observe green_traffic_light\n2. turn_right", aligned=True)
        assert len(parsed) == 2

    def test_describe(self):
        parsed = parse_response(RIGHT_TURN_BEFORE, task="right turn")
        assert "right turn" in parsed.describe()


class TestControllerConstruction:
    def test_one_state_per_step_plus_final(self):
        controller = build_controller_from_text(RIGHT_TURN_BEFORE, name="before")
        assert controller.num_states == 6
        assert controller.initial_state == "q0"

    def test_unparseable_response_raises(self):
        with pytest.raises(AlignmentError):
            build_controller_from_text("1. Stay calm.\n2. Breathe.")

    def test_wait_action_epsilon(self):
        controller = build_controller_from_text("1. Observe the traffic light.\n2. Turn right.", wait_action=None)
        assert controller.transitions[0].action == frozenset()

    def test_guarding_stop_step_self_loops_on_condition(self):
        controller = build_controller_from_text(
            "1. If the traffic light is not green, stop.\n2. Turn right.", name="guarding"
        )
        loops = [t for t in controller.transitions if t.source == t.target == "q0"]
        assert loops and loops[0].action == frozenset({"stop"})
        assert loops[0].guard.evaluate(frozenset())              # ¬green → keep stopping
        assert not loops[0].guard.evaluate(frozenset({"green_traffic_light"}))

    def test_conditional_action_waits_otherwise(self):
        controller = build_controller_from_text("1. If there is no car from the left, turn right.")
        waits = [t for t in controller.transitions if t.source == t.target == "q0"]
        assert waits and waits[0].action == frozenset({"stop"})

    def test_build_controller_requires_steps(self):
        with pytest.raises(AlignmentError):
            build_controller([], name="empty")


class TestPaperExamples:
    def test_fig7_before_controller_fails_phi5(self, right_turn_task, driving_specs):
        """The pre-fine-tuning right-turn controller violates Φ5 (Section 5.1)."""
        controller = build_controller_from_text(RIGHT_TURN_BEFORE, task=right_turn_task.name)
        model = right_turn_task.model()
        checker = ModelChecker()
        result = checker.check(build_product(model, controller, restart_on_termination=True), driving_specs["phi_5"])
        assert not result.holds
        assert result.counterexample is not None

    def test_fig7_after_controller_satisfies_phi5(self, right_turn_task, right_turn_good_controller, driving_specs):
        model = right_turn_task.model()
        checker = ModelChecker()
        product = build_product(model, right_turn_good_controller, restart_on_termination=True)
        assert checker.check(product, driving_specs["phi_5"]).holds
        assert checker.check(product, driving_specs["phi_9"]).holds
        assert checker.check(product, driving_specs["phi_11"]).holds
