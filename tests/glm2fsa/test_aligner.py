"""Tests for phrase alignment (the paper's second prompting stage)."""

import pytest

from repro.errors import AlignmentError
from repro.glm2fsa import align_response, align_step, find_action, find_propositions


class TestFindPropositions:
    def test_simple_phrase(self):
        matches = find_propositions("watch for the green traffic light")
        assert [m[1] for m in matches] == ["green_traffic_light"]

    def test_longest_match_wins(self):
        matches = find_propositions("the green left turn light is on")
        assert matches[0][1] == "green_left_turn_light"

    def test_negation_before_phrase(self):
        matches = find_propositions("there is no car from the left")
        assert matches[0][1:] == ("car_from_left", True)

    def test_negation_after_phrase(self):
        matches = find_propositions("the traffic light is not green")
        assert matches[0][1:] == ("green_traffic_light", True)

    def test_multiple_literals_with_mixed_polarity(self):
        matches = find_propositions("no car from the left and a pedestrian on the right")
        table = {proposition: negated for _, proposition, negated in matches}
        assert table == {"car_from_left": True, "pedestrian_at_right": False}

    def test_hyphenated_phrases(self):
        matches = find_propositions("wait for the left-turn light")
        assert matches[0][1] == "green_left_turn_light"


class TestFindAction:
    @pytest.mark.parametrize(
        "text, action",
        [
            ("turn your vehicle right", "turn_right"),
            ("proceed to turn right", "turn_right"),
            ("come to a complete stop", "stop"),
            ("start moving forward", "go_straight"),
            ("make the left turn", "turn_left"),
            ("wait for the light", "stop"),
        ],
    )
    def test_action_lexicon(self, text, action):
        assert find_action(text) == action

    def test_earliest_action_wins(self):
        assert find_action("turn left and proceed through the intersection") == "turn_left"

    def test_no_action(self):
        assert find_action("observe the surroundings") is None


class TestAlignStep:
    def test_observation(self):
        assert align_step("Observe the traffic light.") == "observe green_traffic_light"

    def test_conditional_with_action(self):
        aligned = align_step("If there is no car from the left, turn right.")
        assert aligned == "if no car_from_left , turn_right"

    def test_conditional_with_observation_consequence(self):
        aligned = align_step("If there is no car from the left, check pedestrians on your right.")
        assert aligned == "if no car_from_left , observe pedestrian_at_right"

    def test_conditional_with_empty_condition(self):
        aligned = align_step("If it is safe, turn your vehicle right.")
        assert aligned == "if true , turn_right"

    def test_when_is_treated_as_conditional(self):
        aligned = align_step("When the traffic light turns green, start moving forward.")
        assert aligned.startswith("if green_traffic_light")
        assert aligned.endswith("go_straight")

    def test_unconditional_action(self):
        assert align_step("Turn right.") == "turn_right"

    def test_unalignable_raises(self):
        with pytest.raises(AlignmentError):
            align_step("Be courteous to everyone around you at all times.")

    def test_align_response_numbers_lines(self):
        response = "1. Observe the traffic light.\n2. Turn right."
        aligned = align_response(response)
        assert aligned.splitlines() == ["1. observe green_traffic_light", "2. turn_right"]
