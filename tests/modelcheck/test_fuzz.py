"""Property/fuzz tests: random LTL × random Kripke structures, fast vs naive.

A seeded generator draws bounded-depth formulas over the spec grammar and
small random Kripke structures; the optimized checker must agree with the
naive reference on every ``holds`` verdict, repeated formulas must hit the
construction memo, and pruning must preserve the language on every reported
lasso.  A small fixed seed set runs in tier-1; the 200-case sweep rides
behind the ``slow`` marker (``pytest -m slow``).
"""

import random

import pytest

from repro.automata import KripkeStructure
from repro.logic.ast import And, Atom, Formula, Next, Not, Or, Release, Until
from repro.logic.ltl2buchi import formula_key, ltl_to_buchi
from repro.modelcheck import ModelChecker, NaiveModelChecker
from repro.modelcheck.fastpath import BuchiMemo, automaton_accepts_lasso, prune_automaton

ATOMS = ("a", "b", "c")


def random_formula(rng: random.Random, depth: int) -> Formula:
    """A random formula over the spec grammar, with bounded operator depth."""
    if depth <= 0 or rng.random() < 0.3:
        atom = Atom(rng.choice(ATOMS))
        return Not(atom) if rng.random() < 0.4 else atom
    shape = rng.randrange(6)
    if shape == 0:
        return And(random_formula(rng, depth - 1), random_formula(rng, depth - 1))
    if shape == 1:
        return Or(random_formula(rng, depth - 1), random_formula(rng, depth - 1))
    if shape == 2:
        return Next(random_formula(rng, depth - 1))
    if shape == 3:
        return Until(random_formula(rng, depth - 1), random_formula(rng, depth - 1))
    if shape == 4:
        return Release(random_formula(rng, depth - 1), random_formula(rng, depth - 1))
    return Not(random_formula(rng, depth - 1))


def random_kripke(rng: random.Random, max_states: int = 6) -> KripkeStructure:
    """A small random Kripke structure; every state gets at least one successor."""
    n = rng.randrange(2, max_states + 1)
    kripke = KripkeStructure(name="fuzz")
    for i in range(n):
        label = frozenset(atom for atom in ATOMS if rng.random() < 0.4)
        kripke.add_state(i, label, initial=(i == 0))
    for i in range(n):
        successors = rng.sample(range(n), rng.randrange(1, min(3, n) + 1))
        for j in successors:
            kripke.add_transition(i, j)
    return kripke


def run_cases(seed: int, cases: int) -> None:
    rng = random.Random(seed)
    naive = NaiveModelChecker()
    memo = BuchiMemo()
    fast = ModelChecker(memo=memo)
    for _ in range(cases):
        formula = random_formula(rng, depth=rng.randrange(1, 4))
        kripke = random_kripke(rng)
        naive_result = naive.check(kripke, formula)
        fast_result = fast.check(kripke, formula)
        assert fast_result.holds == naive_result.holds, (
            f"divergence on {formula} over {kripke.name}: "
            f"naive={naive_result.holds} fast={fast_result.holds}"
        )
        if not fast_result.holds:
            assert fast_result.counterexample is not None


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_fast_matches_naive_on_fixed_seeds(seed):
    run_cases(seed, cases=25)


@pytest.mark.slow
@pytest.mark.parametrize("seed", [7, 11])
def test_fast_matches_naive_on_the_full_sweep(seed):
    run_cases(seed, cases=100)


def test_repeat_formulas_hit_the_memo():
    rng = random.Random(42)
    memo = BuchiMemo()
    fast = ModelChecker(memo=memo)
    formula = random_formula(rng, depth=3)
    for _ in range(3):
        fast.check(random_kripke(rng), formula)
    stats = memo.stats()
    assert stats["misses"] == 1
    assert stats["hits_memory"] == 2


def test_pruning_preserves_reported_violations():
    """Every lasso the naive path reports is accepted by raw AND pruned ¬Φ NBA."""
    rng = random.Random(3)
    naive = NaiveModelChecker()
    checked = 0
    while checked < 10:
        formula = random_formula(rng, depth=rng.randrange(1, 4))
        kripke = random_kripke(rng)
        result = naive.check(kripke, formula)
        if result.holds:
            continue
        checked += 1
        ce = result.counterexample
        prefix = [step.label for step in ce.prefix]
        cycle = [step.label for step in ce.cycle]
        raw = ltl_to_buchi(Not(formula))
        assert automaton_accepts_lasso(raw, prefix, cycle)
        assert automaton_accepts_lasso(prune_automaton(raw), prefix, cycle)


def test_structurally_equal_formulas_share_a_key():
    rng = random.Random(5)
    for _ in range(20):
        formula = random_formula(rng, depth=3)
        rebuilt = eval(  # noqa: S307 - repr of these dataclasses is constructor syntax
            repr(formula),
            {
                "And": And, "Or": Or, "Not": Not, "Next": Next,
                "Until": Until, "Release": Release, "Atom": Atom,
            },
        )
        assert formula_key(rebuilt) == formula_key(formula)
