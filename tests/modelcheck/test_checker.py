"""Tests for the LTL model checker (the NuSMV substitute)."""

import pytest

from repro.automata import KripkeStructure, build_product
from repro.errors import VerificationError
from repro.logic import parse_ltl
from repro.modelcheck import ModelChecker, verify_controller_against_specs


@pytest.fixture(scope="module")
def checker() -> ModelChecker:
    return ModelChecker()


def lasso(labels, loop_from=0):
    """A Kripke structure that is a simple lasso over the given labels."""
    kripke = KripkeStructure(name="lasso")
    for i, label in enumerate(labels):
        kripke.add_state(i, frozenset(label), initial=(i == 0))
    for i in range(len(labels) - 1):
        kripke.add_transition(i, i + 1)
    kripke.add_transition(len(labels) - 1, loop_from)
    return kripke


class TestBasicVerdicts:
    def test_always_holds(self, checker):
        assert checker.check(lasso([{"a"}, {"a"}]), "G a").holds

    def test_always_violated(self, checker):
        result = checker.check(lasso([{"a"}, {}]), "G a")
        assert not result.holds
        assert result.counterexample is not None

    def test_eventually_holds(self, checker):
        assert checker.check(lasso([{}, {"b"}]), "F b").holds

    def test_eventually_violated_on_empty_loop(self, checker):
        assert not checker.check(lasso([{}, {}]), "F b").holds

    def test_response_property(self, checker):
        kripke = lasso([{"ped"}, {"stop"}, {}])
        assert checker.check(kripke, "G(ped -> F stop)").holds

    def test_response_property_violated(self, checker):
        kripke = lasso([{"ped"}, {"go"}, {"go"}], loop_from=1)
        assert not checker.check(kripke, "G(ped -> F stop)").holds

    def test_next_operator(self, checker):
        assert checker.check(lasso([{"a"}, {"b"}], loop_from=1), "X b").holds
        assert not checker.check(lasso([{"a"}, {"c"}], loop_from=1), "X b").holds

    def test_until(self, checker):
        assert checker.check(lasso([{"a"}, {"a"}, {"b"}], loop_from=2), "a U b").holds
        assert not checker.check(lasso([{"a"}, {}, {"b"}], loop_from=2), "a U b").holds

    def test_infinitely_often(self, checker):
        assert checker.check(lasso([{"a"}, {}]), "G F a").holds
        assert not checker.check(lasso([{"a"}, {}], loop_from=1), "G F a").holds

    def test_string_and_formula_inputs_agree(self, checker):
        kripke = lasso([{"a"}, {"a"}])
        assert checker.check(kripke, "G a").holds == checker.check(kripke, parse_ltl("G a")).holds

    def test_all_initial_states_are_checked(self, checker):
        kripke = KripkeStructure(name="two_inits")
        kripke.add_state("good", ["a"], initial=True)
        kripke.add_state("bad", [], initial=True)
        kripke.add_transition("good", "good")
        kripke.add_transition("bad", "bad")
        assert not checker.check(kripke, "G a").holds


class TestCounterexamples:
    def test_counterexample_is_a_lasso(self, checker):
        result = checker.check(lasso([{"a"}, {}], loop_from=1), "G a")
        counterexample = result.counterexample
        assert len(counterexample.cycle) >= 1
        assert counterexample.labels  # non-empty violating trace

    def test_counterexample_violates_spec_on_unrolling(self, checker):
        """The finite unrolling of the counter-example indeed violates a safety spec."""
        from repro.logic import evaluate_trace

        spec = parse_ltl("G a")
        result = checker.check(lasso([{"a"}, {"a"}, {}], loop_from=0), spec)
        assert not result.holds
        assert not evaluate_trace(spec, result.counterexample.finite_unrolling())

    def test_describe_mentions_loop(self, checker):
        result = checker.check(lasso([{"a"}, {}], loop_from=1), "G a")
        assert "Loop" in result.counterexample.describe()


class TestReportsAndLimits:
    def test_check_all_counts(self, checker):
        kripke = lasso([{"a"}, {"a", "b"}])
        report = checker.check_all(kripke, ["G a", "F b", "G b"])
        assert report.num_specifications == 3
        assert report.num_satisfied == 2
        assert report.satisfaction_ratio == pytest.approx(2 / 3)
        assert len(report.violated) == 1

    def test_product_state_limit(self):
        tiny = ModelChecker(max_product_states=2)
        kripke = lasso([{"a"}, {"b"}, {"c"}, {"d"}])
        with pytest.raises(VerificationError):
            tiny.check(kripke, "G F a")

    def test_verify_controller_wrapper(self, simple_model, safe_controller, reckless_controller):
        specs = [parse_ltl("G(!green -> !go)"), parse_ltl("G(ped -> F stop)")]
        safe_report = verify_controller_against_specs(simple_model, safe_controller, specs)
        reckless_report = verify_controller_against_specs(simple_model, reckless_controller, specs)
        assert safe_report.num_satisfied == 2
        assert reckless_report.num_satisfied == 0

    def test_result_bool_and_describe(self, checker):
        result = checker.check(lasso([{"a"}]), "G a")
        assert bool(result)
        assert "satisfied" in result.describe()
