"""Tests for the SMV-like module language (parser, compiler, emitter)."""

import pytest

from repro.errors import SMVSyntaxError
from repro.modelcheck import ModelChecker
from repro.modelcheck.smv import compile_module, controller_to_smv, parse_smv, specifications_to_smv, verification_script
from repro.logic import parse_ltl

SAMPLE_MODULE = """
MODULE turn_left_after_finetune

VAR
    green_left_turn_light : boolean;
    opposite_car : boolean;
    action : {stop, turn_left, go_straight};

ASSIGN
    init(action) := stop;

TRANS
    case
        !green_left_turn_light : next(action) = stop;
        green_left_turn_light : next(action) = turn_left;
    esac;

LTLSPEC NAME phi_safety :=
    G( !green_left_turn_light -> X !turn_left );
"""


class TestParser:
    def test_module_name_and_variables(self):
        program = parse_smv(SAMPLE_MODULE)
        module = program.module("turn_left_after_finetune")
        assert module is not None
        assert {v.name for v in module.boolean_variables()} == {"green_left_turn_light", "opposite_car"}
        assert module.variable("action").domain == ("stop", "turn_left", "go_straight")

    def test_init_assignment(self):
        module = parse_smv(SAMPLE_MODULE).modules[0]
        assert module.init_assigns[0].variable == "action"
        assert module.init_assigns[0].value == "stop"

    def test_trans_branches(self):
        module = parse_smv(SAMPLE_MODULE).modules[0]
        assert len(module.trans_branches) == 2
        assert module.trans_branches[0].value == "stop"

    def test_ltlspec_collected(self):
        program = parse_smv(SAMPLE_MODULE)
        assert program.specs[0].name == "phi_safety"
        assert "turn_left" in program.specs[0].formula

    def test_comments_are_ignored(self):
        program = parse_smv("MODULE m\nVAR\n  x : boolean; -- a comment\n")
        assert program.modules[0].variables[0].name == "x"

    def test_unknown_statement_raises(self):
        with pytest.raises(SMVSyntaxError):
            parse_smv("MODULE m\nVAR\n  ???\n")

    def test_statement_outside_module_raises(self):
        with pytest.raises(SMVSyntaxError):
            parse_smv("VAR\n x : boolean;\n")


class TestCompiler:
    def test_state_space_size(self):
        module = parse_smv(SAMPLE_MODULE).modules[0]
        kripke = compile_module(module)
        # 2 booleans x 3 actions = 12 states.
        assert kripke.num_states == 12

    def test_initial_states_respect_init(self):
        module = parse_smv(SAMPLE_MODULE).modules[0]
        kripke = compile_module(module)
        assert all("stop" in kripke.label(s) for s in kripke.initial_states)

    def test_compiled_module_satisfies_safety_spec(self):
        program = parse_smv(SAMPLE_MODULE)
        kripke = compile_module(program.modules[0])
        spec = parse_ltl(program.specs[0].formula)
        assert ModelChecker().check(kripke, spec).holds

    def test_violating_module_detected(self):
        violating = SAMPLE_MODULE.replace(
            "!green_left_turn_light : next(action) = stop;",
            "!green_left_turn_light : next(action) = turn_left;",
        )
        program = parse_smv(violating)
        kripke = compile_module(program.modules[0])
        spec = parse_ltl(program.specs[0].formula)
        assert not ModelChecker().check(kripke, spec).holds

    def test_state_space_limit(self):
        text = "MODULE big\nVAR\n" + "\n".join(f"  v{i} : boolean;" for i in range(20))
        module = parse_smv(text).modules[0]
        with pytest.raises(SMVSyntaxError):
            compile_module(module, max_states=100)


class TestEmitter:
    def test_controller_roundtrip(self, right_turn_good_controller):
        text = controller_to_smv(right_turn_good_controller)
        program = parse_smv(text)
        module = program.modules[0]
        assert module.variable("action") is not None
        kripke = compile_module(module)
        assert kripke.num_states > 0

    def test_specifications_rendering(self, driving_specs):
        text = specifications_to_smv(list(driving_specs.values())[:3], names=["phi_1", "phi_2", "phi_3"])
        assert text.count("LTLSPEC") == 3

    def test_verification_script(self):
        script = verification_script("right_turn.smv", ["phi_1", "phi_2"])
        assert "read_model -i right_turn.smv" in script
        assert script.count("check_ltlspec") == 2
