"""Tests for the verification fast path (repro.modelcheck.fastpath).

The differential and fuzz suites prove verdict agreement end to end; these
tests cover the fast path's building blocks directly — pruning, serialization,
the construction memo and its persisted shard, compiled products, result
caching, fingerprints, and the early-exit (``at_least``) API.
"""

import pytest

from repro.automata import KripkeStructure, build_product
from repro.automata.buchi import BuchiAutomaton, LabelConstraint
from repro.driving import task_by_name
from repro.glm2fsa.builder import build_controller_from_text
from repro.logic import parse_ltl
from repro.logic.ast import Not
from repro.logic.ltl2buchi import formula_key, ltl_to_buchi
from repro.modelcheck import ModelChecker, NaiveModelChecker
from repro.modelcheck.fastpath import (
    BuchiMemo,
    CachedAutomaton,
    ResultCache,
    automaton_accepts_lasso,
    compile_product,
    controller_fingerprint,
    deserialize_automaton,
    find_accepting_lasso,
    model_fingerprint,
    prune_automaton,
    serialize_automaton,
)


def lasso(labels, loop_from=0):
    kripke = KripkeStructure(name="lasso")
    for i, label in enumerate(labels):
        kripke.add_state(i, frozenset(label), initial=(i == 0))
    for i in range(len(labels) - 1):
        kripke.add_transition(i, i + 1)
    kripke.add_transition(len(labels) - 1, loop_from)
    return kripke


def negated_automaton(text):
    return ltl_to_buchi(Not(parse_ltl(text)), name="neg")


class TestPruning:
    def test_drops_states_that_cannot_reach_an_accepting_cycle(self):
        nba = BuchiAutomaton(name="raw")
        nba.add_state("a", initial=True)
        nba.add_state("b", accepting=True)
        nba.add_state("dead")  # reachable, but no path back to any cycle
        true_c = LabelConstraint(frozenset(), frozenset())
        nba.add_transition("a", true_c, "b")
        nba.add_transition("b", true_c, "b")
        nba.add_transition("a", true_c, "dead")
        pruned = prune_automaton(nba)
        assert pruned.num_states == 2

    def test_unreachable_accepting_cycle_yields_empty_automaton(self):
        nba = BuchiAutomaton(name="raw")
        nba.add_state("a", initial=True)
        nba.add_state("island", accepting=True)
        true_c = LabelConstraint(frozenset(), frozenset())
        nba.add_transition("a", true_c, "a")
        nba.add_transition("island", true_c, "island")
        pruned = prune_automaton(nba)
        assert pruned.num_states == 0
        assert CachedAutomaton(pruned).is_empty

    def test_merges_bisimilar_states(self):
        nba = BuchiAutomaton(name="raw")
        nba.add_state("i", initial=True)
        # Two non-accepting states with identical outgoing behaviour.
        nba.add_state("x1")
        nba.add_state("x2")
        nba.add_state("acc", accepting=True)
        a = LabelConstraint(frozenset({"a"}), frozenset())
        true_c = LabelConstraint(frozenset(), frozenset())
        nba.add_transition("i", a, "x1")
        nba.add_transition("i", a, "x2")
        nba.add_transition("x1", true_c, "acc")
        nba.add_transition("x2", true_c, "acc")
        nba.add_transition("acc", true_c, "acc")
        pruned = prune_automaton(nba)
        assert pruned.num_states == 3  # x1/x2 merged

    @pytest.mark.parametrize("text", ["G a", "F b", "G (a -> F b)", "a U b", "G F a"])
    def test_never_grows_the_automaton(self, text):
        raw = negated_automaton(text)
        assert prune_automaton(raw).num_states <= raw.num_states

    @pytest.mark.parametrize(
        "text,labels,loop_from",
        [
            ("G a", [{"a"}, set()], 0),
            ("F b", [set(), set()], 0),
            ("G (a -> F b)", [{"a"}, {"c"}], 1),
            ("a U b", [{"a"}, set(), {"b"}], 2),
        ],
    )
    def test_preserves_violating_lassos(self, text, labels, loop_from):
        """Any lasso the raw automaton accepts, the pruned one accepts too."""
        kripke = lasso(labels, loop_from=loop_from)
        naive = NaiveModelChecker().check(kripke, text)
        assert not naive.holds
        ce = naive.counterexample
        prefix = [step.state for step in ce.prefix]
        cycle = [step.state for step in ce.cycle]
        raw = negated_automaton(text)

        def word_label(state):
            return kripke.label(state)

        prefix_labels = [word_label(s) for s in prefix]
        cycle_labels = [word_label(s) for s in cycle]
        assert automaton_accepts_lasso(raw, prefix_labels, cycle_labels)
        assert automaton_accepts_lasso(prune_automaton(raw), prefix_labels, cycle_labels)


class TestSerialization:
    def test_round_trip_preserves_the_language_machinery(self):
        raw = prune_automaton(negated_automaton("G (a -> F b)"))
        restored = deserialize_automaton(serialize_automaton(raw))
        assert restored is not None
        assert restored.num_states == raw.num_states
        assert len(restored.transitions) == len(raw.transitions)
        assert {s for s in restored.accepting_states} == set(raw.accepting_states)

    def test_schema_mismatch_is_rejected(self):
        payload = serialize_automaton(prune_automaton(negated_automaton("G a")))
        payload["schema"] = 999
        assert deserialize_automaton(payload) is None

    @pytest.mark.parametrize("payload", [None, 7, {}, {"schema": 1}, {"schema": 1, "states": "x"}])
    def test_malformed_payloads_are_rejected_not_raised(self, payload):
        assert deserialize_automaton(payload) is None


class TestBuchiMemo:
    def test_first_translation_is_a_miss_then_memory_hits(self):
        memo = BuchiMemo()
        formula = Not(parse_ltl("G (a -> F b)"))
        key = formula_key(formula)
        assert memo.lookup(key) is None
        cached = memo.translate_and_store(key, formula)
        assert memo.lookup(key) is cached
        stats = memo.stats()
        assert stats["misses"] == 1
        assert stats["hits_memory"] == 1

    def test_persisted_shard_round_trip(self, tmp_path):
        formula = Not(parse_ltl("G (ped -> F stop)"))
        key = formula_key(formula)
        writer = BuchiMemo()
        assert writer.configure_directory(tmp_path) == 0
        first = writer.translate_and_store(key, formula)

        reader = BuchiMemo()
        assert reader.configure_directory(tmp_path) == 1
        assert reader.has_persisted(key)
        loaded = reader.load_persisted(key)
        assert loaded is not None
        assert loaded.num_states == first.num_states
        assert reader.stats()["hits_disk"] == 1
        # Once deserialized it lives in memory: no second disk load.
        assert not reader.has_persisted(key)
        assert reader.lookup(key) is loaded

    def test_memory_entries_flush_when_a_directory_attaches_later(self, tmp_path):
        formula = Not(parse_ltl("F b"))
        key = formula_key(formula)
        early = BuchiMemo()
        early.translate_and_store(key, formula)
        early.configure_directory(tmp_path)

        later = BuchiMemo()
        assert later.configure_directory(tmp_path) == 1

    def test_corrupt_persisted_entry_falls_back_to_none(self, tmp_path):
        memo = BuchiMemo()
        memo._persisted["bad-key"] = {"schema": 999}
        assert memo.load_persisted("bad-key") is None

    def test_detach_with_none(self, tmp_path):
        memo = BuchiMemo()
        memo.configure_directory(tmp_path)
        assert memo.configure_directory(None) == 0
        assert memo._directory is None


class TestCompiledProduct:
    @pytest.fixture(scope="class")
    def scenario(self):
        task = task_by_name("turn_left_unprotected")
        model = task.model()
        controller = build_controller_from_text(
            "1. If pedestrian, stop.\n2. Otherwise, proceed through the intersection.",
            task=task.name,
            name="compiled_product_probe",
        )
        return model, controller

    @pytest.mark.parametrize("restart", [True, False])
    def test_matches_build_product_states_and_edges(self, scenario, restart):
        model, controller = scenario
        reference = build_product(model, controller, restart_on_termination=restart)
        compiled = compile_product(model, controller, restart_on_termination=restart)
        assert compiled.num_states == reference.num_states
        ref_edges = {
            (s, d) for s in reference.states for d in reference.successors(s)
        }
        got_edges = {
            (compiled.origin[i], compiled.origin[j])
            for i in range(compiled.num_states)
            for j in compiled.succ[i]
        }
        assert got_edges == ref_edges
        for i in range(compiled.num_states):
            assert compiled.label_of(compiled.origin[i]) == reference.label(compiled.origin[i])

    def test_find_accepting_lasso_verdicts_match_reference(self, scenario):
        model, controller = scenario
        reference = build_product(model, controller, restart_on_termination=True)
        compiled = compile_product(model, controller, restart_on_termination=True)
        naive = NaiveModelChecker()
        for text in ["G (ped -> F stop)", "G F go", "F crash"]:
            formula = parse_ltl(text)
            cached = CachedAutomaton(prune_automaton(ltl_to_buchi(Not(formula))))
            lasso_found, stats = find_accepting_lasso(compiled, cached)
            assert (lasso_found is None) == naive.check(reference, formula).holds
            assert stats["kripke_states"] == compiled.num_states

    def test_product_size_limit_raises(self, scenario):
        model, controller = scenario
        compiled = compile_product(model, controller)
        cached = CachedAutomaton(prune_automaton(ltl_to_buchi(Not(parse_ltl("G F stop")))))
        with pytest.raises(Exception, match="product exceeded"):
            find_accepting_lasso(compiled, cached, max_product_states=1)


class TestResultCache:
    def test_lru_eviction_and_stats(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"
        cache.put("c", 3)  # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        stats = cache.stats()
        assert stats["hits"] == 3
        assert stats["misses"] == 1
        cache.clear()
        assert cache.get("a") is None


class TestFingerprints:
    def test_controller_fingerprint_ignores_the_name(self):
        task = task_by_name("turn_left_unprotected")
        text = "1. If pedestrian, stop.\n2. Otherwise, proceed."
        one = build_controller_from_text(text, task=task.name, name="one")
        two = build_controller_from_text(text, task=task.name, name="two")
        assert controller_fingerprint(one) == controller_fingerprint(two)

    def test_controller_fingerprint_separates_structures(self):
        task = task_by_name("turn_left_unprotected")
        one = build_controller_from_text(
            "1. If pedestrian, stop.\n2. Otherwise, proceed.", task=task.name
        )
        two = build_controller_from_text(
            "1. Proceed through the intersection.", task=task.name
        )
        assert controller_fingerprint(one) != controller_fingerprint(two)

    def test_model_fingerprint_is_stable_across_rebuilds(self):
        task = task_by_name("turn_left_unprotected")
        assert model_fingerprint(task.model()) == model_fingerprint(task.model())


class TestResultCacheIntegration:
    def test_repeat_verification_hits_the_result_cache(self):
        task = task_by_name("turn_left_unprotected")
        model = task.model()
        controller = build_controller_from_text(
            "1. If pedestrian, stop.\n2. Otherwise, proceed.", task=task.name
        )
        checker = ModelChecker(memo=BuchiMemo())
        specs = [parse_ltl("G (ped -> F stop)"), parse_ltl("G F go")]
        first = checker.verify_controller(model, controller, specs)
        second = checker.verify_controller(model, controller, specs)
        assert [r.holds for r in first.results] == [r.holds for r in second.results]
        assert checker._results.stats()["hits"] == len(specs)

    def test_same_structure_different_name_shares_cache_entries(self):
        task = task_by_name("turn_left_unprotected")
        model = task.model()
        text = "1. If pedestrian, stop.\n2. Otherwise, proceed."
        one = build_controller_from_text(text, task=task.name, name="one")
        two = build_controller_from_text(text, task=task.name, name="two")
        checker = ModelChecker(memo=BuchiMemo())
        specs = [parse_ltl("G (ped -> F stop)")]
        checker.verify_controller(model, one, specs)
        checker.verify_controller(model, two, specs)
        assert checker._results.stats()["hits"] == 1


class TestAtLeast:
    @pytest.fixture(scope="class")
    def scenario(self):
        task = task_by_name("turn_left_unprotected")
        model = task.model()
        controller = build_controller_from_text(
            "1. If pedestrian, stop.\n2. Otherwise, proceed.", task=task.name
        )
        return model, controller

    def test_threshold_agrees_with_the_full_report(self, scenario):
        model, controller = scenario
        specs = [parse_ltl(t) for t in ["G (ped -> F stop)", "G F go", "F crash", "G a"]]
        for use_fastpath in (True, False):
            checker = ModelChecker(use_fastpath=use_fastpath, memo=BuchiMemo())
            satisfied = checker.verify_controller(model, controller, specs).num_satisfied
            for threshold in range(len(specs) + 2):
                assert checker.verify_controller_at_least(
                    model, controller, specs, threshold
                ) == (satisfied >= threshold)

    def test_check_at_least_on_a_kripke_structure(self):
        kripke = lasso([{"a"}, {"a", "b"}])
        specs = ["G a", "F b", "G b"]
        for use_fastpath in (True, False):
            checker = ModelChecker(use_fastpath=use_fastpath, memo=BuchiMemo())
            assert checker.check_at_least(kripke, specs, 2)
            assert not checker.check_at_least(kripke, specs, 3)
        assert ModelChecker(memo=BuchiMemo()).check_at_least(kripke, [], 0)


class TestEmptyReportRatio:
    def test_empty_report_is_vacuously_satisfied(self):
        from repro.modelcheck import VerificationReport

        report = VerificationReport(results=())
        assert report.satisfaction_ratio == 1.0
        assert report.num_satisfied == 0

    def test_empty_formal_feedback_is_vacuously_satisfied(self):
        from repro.feedback.formal import FormalFeedback

        feedback = FormalFeedback(task="t", num_satisfied=0, num_specifications=0)
        assert feedback.satisfaction_ratio == 1.0

    def test_parse_failed_feedback_still_scores_zero(self):
        from repro.feedback.formal import FormalFeedback

        feedback = FormalFeedback(
            task="t", num_satisfied=0, num_specifications=15, parse_failed=True
        )
        assert feedback.satisfaction_ratio == 0.0
