"""Differential tests: the fast path against the frozen naive checker.

Every catalogue task × response category × template is verified against the
full 15-rule book by both :class:`NaiveModelChecker` (the reference) and the
optimized :class:`ModelChecker`, asserting identical ``holds`` verdicts and
``satisfaction_ratio``.  Counterexamples are additionally *validated*, not
compared: the two paths may pick different lassos, so instead each reported
lasso is replayed through the naive product (every step must be a real edge)
and re-checked as a one-path Kripke structure to confirm it genuinely
violates its specification.
"""

import pytest

from repro.automata import KripkeStructure, build_product
from repro.driving import all_specifications, all_tasks, response_templates
from repro.errors import AlignmentError
from repro.glm2fsa.builder import build_controller_from_text
from repro.modelcheck import ModelChecker, NaiveModelChecker
from repro.modelcheck.fastpath import BuchiMemo

SPEC_ITEMS = tuple(all_specifications().items())


def catalogue_cases():
    """(task, category, index, controller) for every parseable template."""
    cases = []
    for task in all_tasks():
        for category in ("compliant", "flawed", "vague"):
            for index, text in enumerate(response_templates(task.name, category)):
                try:
                    controller = build_controller_from_text(
                        text, task=task.name, name=f"{task.name}_{category}_{index}"
                    )
                except AlignmentError:
                    continue  # unparseable templates score 0 before any checking
                cases.append(pytest.param(task, controller, id=f"{task.name}-{category}-{index}"))
    return cases


def lasso_structure(counterexample):
    """The reported lasso as a one-path Kripke structure (ints, looped)."""
    prefix = list(counterexample.prefix)
    cycle = list(counterexample.cycle)
    kripke = KripkeStructure(name="reported_lasso")
    steps = prefix + cycle
    for i, step in enumerate(steps):
        kripke.add_state(i, frozenset(step.label), initial=(i == 0))
    for i in range(len(steps) - 1):
        kripke.add_transition(i, i + 1)
    kripke.add_transition(len(steps) - 1, len(prefix))
    return kripke


def assert_valid_counterexample(result, product, formula):
    """The reported lasso is a real path of ``product`` and violates ``formula``."""
    ce = result.counterexample
    assert ce is not None
    steps = list(ce.prefix) + list(ce.cycle)
    # Each step is a genuine product state with the label the product assigns.
    for step in steps:
        assert step.label == product.label(step.state)
    # Each consecutive pair is a genuine product edge, including the back edge.
    for a, b in zip(steps, steps[1:]):
        assert b.state in product.successors(a.state)
    assert steps[len(ce.prefix)].state in product.successors(steps[-1].state)
    # Replayed as a standalone structure, the lasso violates the spec.
    replay = NaiveModelChecker().check(lasso_structure(ce), formula)
    assert not replay.holds


@pytest.mark.parametrize("task,controller", catalogue_cases())
def test_fast_path_matches_naive_on_catalogue(task, controller):
    model = task.model()
    naive = NaiveModelChecker()
    fast = ModelChecker(memo=BuchiMemo())
    names = [name for name, _ in SPEC_ITEMS]
    specs = [formula for _, formula in SPEC_ITEMS]

    naive_report = naive.verify_controller(model, controller, specs, spec_names=names)
    fast_report = fast.verify_controller(model, controller, specs, spec_names=names)

    assert [r.holds for r in fast_report.results] == [r.holds for r in naive_report.results]
    assert fast_report.satisfaction_ratio == naive_report.satisfaction_ratio

    product = build_product(model, controller, restart_on_termination=True)
    for (name, formula), fast_result in zip(SPEC_ITEMS, fast_report.results):
        if not fast_result.holds:
            assert_valid_counterexample(fast_result, product, formula)


def test_result_cache_does_not_change_verdicts():
    """A warm checker (memo + result cache) reports exactly what a cold one does."""
    task = all_tasks()[0]
    model = task.model()
    controller = build_controller_from_text(
        response_templates(task.name, "compliant")[0], task=task.name
    )
    specs = [formula for _, formula in SPEC_ITEMS]
    warm = ModelChecker(memo=BuchiMemo())
    cold_verdicts = [r.holds for r in warm.verify_controller(model, controller, specs).results]
    warm_verdicts = [r.holds for r in warm.verify_controller(model, controller, specs).results]
    assert warm_verdicts == cold_verdicts
