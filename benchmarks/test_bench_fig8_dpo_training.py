"""Figure 8: DPO loss, accuracy, and marginal preference over descent steps.

The paper plots the mean over five seeds with min/max shading on Llama2-7B.
Here three seeds of the numpy policy are fine-tuned on verification-ranked
preference pairs; the printed table gives mean/min/max per metric every ten
descent steps.  Expected shape: loss 0.69 → ~0, accuracy → ~1, marginal
preference grows from 0.
"""

import numpy as np

from repro.dpo import DPOConfig, MultiSeedCurves, run_dpo
from repro.driving import all_specifications, response_templates, training_tasks
from repro.driving.responses import VAGUE_RESPONSES
from repro.feedback import FormalVerifier, rank_to_pairs
from repro.lm import PretrainConfig, build_corpus, format_prompt, pretrain

from conftest import print_table

NUM_SEEDS = 3
MAX_STEPS = 80


def _template_pairs():
    verifier = FormalVerifier(all_specifications())
    pairs = []
    for task in training_tasks():
        prompt = format_prompt(task)
        model = task.model()
        candidates = list(response_templates(task.name, "compliant")) + list(
            response_templates(task.name, "flawed")[:3]
        ) + [VAGUE_RESPONSES[0]]
        scores = [verifier.verify_response(model, text, task=task.name).num_satisfied for text in candidates]
        pairs.extend(rank_to_pairs(prompt, candidates, scores, task=task.name))
    return pairs


def test_fig8_dpo_training_curves(benchmark):
    corpus = build_corpus(samples_per_task=24, seed=0)
    base = pretrain(corpus, PretrainConfig(num_steps=250, batch_size=16, seed=0))
    pairs = _template_pairs()

    def run():
        curves = MultiSeedCurves()
        for seed in range(NUM_SEEDS):
            config = DPOConfig(
                num_epochs=100,
                max_steps=MAX_STEPS,
                batch_size=12,
                learning_rate=3e-3,
                beta=1.0,
                lora_rank=8,
                checkpoint_every=100,
                seed=seed,
            )
            result = run_dpo(base.model.clone(), base.tokenizer, pairs, config)
            curves.add(result.history)
        return curves

    curves = benchmark.pedantic(run, rounds=1, iterations=1)

    for metric, label in [("losses", "DPO loss"), ("accuracies", "accuracy"), ("marginal_preferences", "marginal preference")]:
        rows = [(step, mean, low, high) for step, mean, low, high in curves.summary_table(metric, every=10)]
        print_table(f"Figure 8 — {label} vs descent step (mean/min/max over {NUM_SEEDS} seeds)",
                    ["step", "mean", "min", "max"], rows)

    loss_mean = curves.mean("losses")
    accuracy_mean = curves.mean("accuracies")
    margin_mean = curves.mean("marginal_preferences")
    assert loss_mean[0] > 0.6                                            # starts near log 2
    # Per-step losses are per-batch and therefore noisy at this scale; compare
    # the tail of the curve against its start rather than a single final step.
    assert np.mean(loss_mean[-15:]) < 0.65 * np.mean(loss_mean[:5])      # and trends towards zero
    assert np.mean(accuracy_mean[-10:]) > 0.8                            # the policy prefers the chosen responses
    assert margin_mean[-1] > 1.0                                         # strong preference vs the reference model
    assert margin_mean[0] < 0.5
