"""Figure 9 and the headline claim.

Figure 9: number of satisfied specifications (out of 15) versus DPO epoch for
training and validation tasks, evaluated by sampling responses from every
stored checkpoint and model-checking the induced controllers.

Headline (abstract / Section 1): the percentage of specifications satisfied by
the controller improves from ~60% before fine-tuning to ≥90% after.
"""

from conftest import print_table


def test_fig9_specifications_vs_epoch(benchmark, dpoaf_run):
    pipeline, result = dpoaf_run

    def collect():
        rows = []
        for epoch in sorted(result.checkpoint_evaluations):
            evaluation = result.checkpoint_evaluations[epoch]
            rows.append((epoch, evaluation.mean_satisfied("train"), evaluation.mean_satisfied("validation")))
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    print_table(
        "Figure 9 — satisfied specifications (of 15) vs DPO epoch",
        ["epoch", "train", "validation"],
        rows,
    )
    first_train, last_train = rows[0][1], rows[-1][1]
    first_val, last_val = rows[0][2], rows[-1][2]
    assert last_train > first_train, "training-task satisfaction must increase with fine-tuning"
    assert last_val > first_val, "validation-task satisfaction must increase with fine-tuning"
    assert last_train >= 12.0, "fine-tuned model should satisfy most of the 15 specifications on training tasks"


def test_headline_60_to_90_percent(benchmark, dpoaf_run):
    pipeline, result = dpoaf_run

    def collect():
        before = result.before_evaluation.satisfaction_ratio()
        after = result.after_evaluation.satisfaction_ratio()
        return before, after

    before, after = benchmark.pedantic(collect, rounds=1, iterations=1)
    print_table(
        "Headline — fraction of specifications satisfied (all tasks)",
        ["stage", "satisfaction"],
        [["before fine-tuning", before], ["after fine-tuning", after]],
    )
    # Paper: ~60% before, >90% after.  The shape must hold: a large improvement
    # ending close to full satisfaction; absolute numbers may differ by a few
    # points because the substrate model and corpus are synthetic.
    assert 0.45 <= before <= 0.80, f"pre-fine-tuning satisfaction {before:.2f} should sit near the paper's ~60%"
    assert after >= 0.85, f"post-fine-tuning satisfaction {after:.2f} should reach the paper's ~90%"
    assert after - before >= 0.15, "fine-tuning must deliver a substantial improvement"
