"""Overhead of the durable jobs daemon over direct ``score_batch`` calls.

Measured claims: admitting a job — validate, journal (fsync), quota, queue —
is milliseconds, not scoring-time; pushing a workload through the daemon
(socket + journal + per-job scheduling) costs a bounded factor over the
one-shot ``FeedbackService.score_batch`` path; and scores are identical in
both paths, always.  Parity is asserted on every machine; the throughput
*ratio* assertion is ``multicore``-marked (see pytest.ini) because on a
single core the daemon's accept/journal threads contend with scoring for
the GIL and the ratio is noise.
"""

import shutil
import statistics
import tempfile
import threading
import time
from pathlib import Path

import pytest

from repro.core.config import FeedbackConfig
from repro.driving import all_specifications, response_templates, training_tasks
from repro.jobs import JobsClient, JobsDaemon, JobStore
from repro.serving import Dispatcher, FeedbackJob, FeedbackService, ServingConfig

from conftest import print_table


def _workload() -> list:
    """Distinct (task, scenario, response) triples — no dedup shortcuts."""
    jobs = []
    for task in training_tasks()[:4]:
        for kind in ("compliant", "flawed"):
            for response in response_templates(task.name, kind):
                jobs.append(
                    FeedbackJob(task=task.name, scenario=task.scenario, response=response)
                )
    seen = set()
    unique = []
    for job in jobs:
        if job.response not in seen:
            seen.add(job.response)
            unique.append(job)
    return unique


def _service() -> FeedbackService:
    return FeedbackService(
        all_specifications(),
        feedback=FeedbackConfig(),
        config=ServingConfig(backend="serial"),
    )


class _LiveDaemon:
    """An in-process daemon over the real service, on a scratch store."""

    def __init__(self, root: Path):
        self.dispatcher = Dispatcher(name="bench-jobs")
        self.store = JobStore(root / "store")
        self.service = _service()
        self.daemon = JobsDaemon(
            root / "daemon.sock", self.store, self.service, dispatcher=self.dispatcher
        )
        self.daemon.start()
        self.client = JobsClient(root / "daemon.sock", client_id="bench", timeout=600)

    def close(self):
        self.daemon.stop()
        self.service.close()
        self.dispatcher.close()
        self.store.close()
        shutil.rmtree(self.store.root.parent, ignore_errors=True)


def test_bench_jobs_submission_latency(benchmark):
    """Admission returns in milliseconds even while the worker is scoring."""
    jobs = _workload()
    root = Path(tempfile.mkdtemp(prefix="bench-jobs-", dir="/tmp"))
    live = _LiveDaemon(root)
    try:

        def run():
            latencies = []
            job_ids = []
            for job in jobs:
                start = time.perf_counter()
                record = live.client.create_job(job.task, job.response)
                latencies.append(time.perf_counter() - start)
                job_ids.append(record["job_id"])
            return latencies, job_ids

        (latencies, job_ids) = benchmark.pedantic(run, rounds=1, iterations=1)
        final = live.client.wait(job_ids)
        submit_mean = statistics.mean(latencies)
        submit_p95 = sorted(latencies)[int(0.95 * (len(latencies) - 1))]
        print_table(
            "Jobs daemon — submission latency (journal + quota + queue)",
            ["jobs", "mean ms", "p95 ms", "max ms"],
            [(len(jobs), submit_mean * 1e3, submit_p95 * 1e3, max(latencies) * 1e3)],
        )
        assert all(job["state"] == "succeeded" for job in final.values())
        # Admission must never wait on scoring: each scored job takes orders
        # of magnitude longer than its own admission.
        assert submit_p95 < 2.0, f"p95 submission latency {submit_p95:.3f}s"
    finally:
        live.close()


N_CLIENTS = 4


def _run_oneshot(jobs):
    service = _service()
    start = time.perf_counter()
    scores = service.score_batch(jobs)
    seconds = time.perf_counter() - start
    service.close()
    return scores, seconds


def _run_through_daemon(jobs, n_clients=N_CLIENTS):
    """Score ``jobs`` via ``n_clients`` concurrent clients of one daemon.

    Returns scores in workload order (responses are unique, so they key the
    merge) and the wall-clock seconds from first submission to last result.
    """
    root = Path(tempfile.mkdtemp(prefix="bench-jobs-", dir="/tmp"))
    live = _LiveDaemon(root)
    try:
        shards = [jobs[i::n_clients] for i in range(n_clients)]
        merged = {}
        lock = threading.Lock()

        def submit(index, shard):
            client = JobsClient(
                root / "daemon.sock", client_id=f"bench-{index}", timeout=600
            )
            batch = client.create_batch(
                [{"task": job.task, "response": job.response} for job in shard]
            )["batch"]
            final = client.wait_batch(batch["batch_id"])
            with lock:
                for record in final.values():
                    merged[record["response"]] = record["score"]

        threads = [
            threading.Thread(target=submit, args=(index, shard))
            for index, shard in enumerate(shards)
            if shard
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        seconds = time.perf_counter() - start
        return [merged[job.response] for job in jobs], seconds
    finally:
        live.close()


def test_bench_jobs_daemon_throughput_parity_vs_oneshot(benchmark):
    """Same scores through N concurrent clients as through ``score_batch``."""
    jobs = _workload()

    def run():
        oneshot_scores, oneshot_seconds = _run_oneshot(jobs)
        daemon_scores, daemon_seconds = _run_through_daemon(jobs)
        return oneshot_scores, daemon_scores, oneshot_seconds, daemon_seconds

    oneshot_scores, daemon_scores, oneshot_seconds, daemon_seconds = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print_table(
        f"Jobs daemon ({N_CLIENTS} concurrent clients) vs one-shot score_batch",
        ["path", "jobs", "seconds", "jobs/s"],
        [
            ("one-shot", len(jobs), oneshot_seconds, len(jobs) / oneshot_seconds),
            ("daemon", len(jobs), daemon_seconds, len(jobs) / daemon_seconds),
            ("overhead ratio", "", daemon_seconds / oneshot_seconds, ""),
        ],
    )
    # The parity claim holds on any machine, loaded or not.
    assert daemon_scores == oneshot_scores, "daemon must score identically to one-shot"


@pytest.mark.multicore
def test_bench_jobs_daemon_overhead_is_bounded_multicore(benchmark):
    """With a spare core for the daemon's threads, durability costs < 2×.

    Marked ``multicore``: on one core the daemon's socket/journal threads
    time-slice against scoring and the ratio measures the scheduler, not the
    subsystem.
    """
    jobs = _workload()

    def run():
        oneshot_scores, oneshot_seconds = _run_oneshot(jobs)
        daemon_scores, daemon_seconds = _run_through_daemon(jobs)
        return oneshot_scores, daemon_scores, oneshot_seconds, daemon_seconds

    oneshot_scores, daemon_scores, oneshot_seconds, daemon_seconds = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    ratio = daemon_seconds / oneshot_seconds
    print_table(
        f"Jobs daemon overhead ({N_CLIENTS} clients, multicore)",
        ["one-shot s", "daemon s", "ratio"],
        [(oneshot_seconds, daemon_seconds, ratio)],
    )
    assert daemon_scores == oneshot_scores
    assert ratio < 2.0, f"daemon overhead ratio {ratio:.2f} >= 2.0"
