"""Cold verification throughput: optimized checker vs the naive reference.

The ROADMAP's hot-path target: ≥5× cold ``verify_controller`` throughput on
the paper tasks.  "Cold" means a fresh :class:`BuchiMemo` and result cache —
every automaton is translated, pruned and product-checked from scratch within
the measured pass — against the frozen :class:`NaiveModelChecker` on the
identical workload: every parseable template of every catalogue task × the
full 15-rule book.  Verdicts must agree exactly; the differential suite
(`tests/modelcheck/test_differential.py`) holds per-spec agreement and
counterexample validity, this benchmark holds the throughput floor.

Run with ``make bench-modelcheck`` or
``PYTHONPATH=src python -m pytest benchmarks/test_bench_modelcheck.py -q -s``.
"""

import time

from repro.driving import all_specifications, all_tasks, response_templates
from repro.errors import AlignmentError
from repro.glm2fsa.builder import build_controller_from_text
from repro.modelcheck import ModelChecker, NaiveModelChecker
from repro.modelcheck.fastpath import BuchiMemo

from conftest import print_table

#: Acceptance floor from the issue: ≥5× cold verification throughput.
SPEEDUP_FLOOR = 5.0


def _workload() -> list:
    """(model, controller) for every parseable catalogue template, models prebuilt."""
    work = []
    for task in all_tasks():
        model = task.model()
        for category in ("compliant", "flawed", "vague"):
            for index, text in enumerate(response_templates(task.name, category)):
                try:
                    controller = build_controller_from_text(
                        text, task=task.name, name=f"{task.name}_{category}_{index}"
                    )
                except AlignmentError:
                    continue
                work.append((model, controller))
    return work


def _verify_all(checker, work, specs) -> tuple:
    """One timed pass; returns (seconds, per-controller verdict tuples)."""
    verdicts = []
    start = time.perf_counter()
    for model, controller in work:
        report = checker.verify_controller(model, controller, specs)
        verdicts.append(tuple(r.holds for r in report.results))
    return time.perf_counter() - start, verdicts


def test_bench_modelcheck_cold_throughput(benchmark):
    work = _workload()
    specs = list(all_specifications().values())

    def run():
        # Warm imports and interpreter caches with throwaway cold passes, then
        # keep the best of two measured passes per checker so a scheduler
        # hiccup can't decide the ratio.  Every fast pass uses a private
        # fresh memo: construction is *cold* inside each measurement.
        _verify_all(NaiveModelChecker(), work, specs)
        _verify_all(ModelChecker(memo=BuchiMemo()), work, specs)
        naive_seconds, naive_verdicts = _verify_all(NaiveModelChecker(), work, specs)
        naive_seconds = min(naive_seconds, _verify_all(NaiveModelChecker(), work, specs)[0])
        fast_seconds, fast_verdicts = _verify_all(ModelChecker(memo=BuchiMemo()), work, specs)
        fast_seconds = min(
            fast_seconds, _verify_all(ModelChecker(memo=BuchiMemo()), work, specs)[0]
        )
        return naive_seconds, fast_seconds, naive_verdicts, fast_verdicts

    naive_seconds, fast_seconds, naive_verdicts, fast_verdicts = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    speedup = naive_seconds / fast_seconds
    checks = len(work) * len(specs)

    print_table(
        f"Cold verify_controller throughput — {len(work)} controllers × {len(specs)} specs",
        ["checker", "seconds", "checks/s"],
        [
            ("naive (reference)", naive_seconds, checks / naive_seconds),
            ("fastpath (cold memo)", fast_seconds, checks / fast_seconds),
            (f"speedup {speedup:.2f}×", "", ""),
        ],
    )

    assert fast_verdicts == naive_verdicts, "fast path diverged from the reference verdicts"
    assert speedup >= SPEEDUP_FLOOR, (
        f"cold speedup {speedup:.2f}× below the {SPEEDUP_FLOOR:.0f}× floor "
        f"(naive {naive_seconds:.3f}s, fast {fast_seconds:.3f}s)"
    )
