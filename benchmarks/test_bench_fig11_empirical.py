"""Figure 11 and the formal-vs-empirical consistency result (Section 5.2).

Controllers built from the model's responses before and after fine-tuning are
executed in the Carla-substitute simulator; for each of Φ1–Φ5 we report the
fraction ``P_Φ`` of rollouts that satisfy the specification.  The paper's
observation: after fine-tuning every ``P_Φ`` is at least as high as before,
and the empirical ranking agrees with the formal-verification ranking.
"""

import numpy as np

from repro.driving import core_specifications, training_tasks
from repro.errors import AlignmentError
from repro.feedback import trace_satisfaction
from repro.glm2fsa import build_controller_from_text
from repro.lm import format_prompt, sample_responses
from repro.sim import SimulationGrounding

from conftest import print_table

ROLLOUTS_PER_CONTROLLER = 12
TASK_COUNT = 4


def _collect_satisfaction(pipeline, model, tokenizer, specs, seed):
    """Pool P_Φ over several tasks' sampled controllers for one model."""
    per_spec = {name: [] for name in specs}
    for task in training_tasks()[:TASK_COUNT]:
        prompt = format_prompt(task)
        responses = sample_responses(model, tokenizer, prompt, 2, seed=seed, temperature=0.9, top_k=20)
        grounding = SimulationGrounding(task.scenario, max_steps=25)
        for response in responses:
            try:
                controller = build_controller_from_text(response, task=task.name)
            except AlignmentError:
                for name in specs:
                    per_spec[name].append(0.0)
                continue
            traces = grounding(controller, ROLLOUTS_PER_CONTROLLER, seed=seed)
            satisfaction = trace_satisfaction(specs, traces)
            for name, value in satisfaction.items():
                per_spec[name].append(value)
    return {name: float(np.mean(values)) for name, values in per_spec.items()}


def test_fig11_empirical_satisfaction_before_vs_after(benchmark, dpoaf_run):
    pipeline, result = dpoaf_run
    tokenizer = result.pretrain_result.tokenizer
    specs = core_specifications()

    def run():
        before = _collect_satisfaction(pipeline, result.dpo_result.reference, tokenizer, specs, seed=11)
        after = _collect_satisfaction(pipeline, result.dpo_result.policy, tokenizer, specs, seed=11)
        return before, after

    before, after = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [(name, before[name], after[name]) for name in specs]
    print_table("Figure 11 — P_Φ during simulated operation", ["specification", "before", "after"], rows)

    improvements = sum(1 for name in specs if after[name] >= before[name] - 0.05)
    assert improvements >= 4, "after fine-tuning, (almost) every specification should be satisfied at least as often"
    assert np.mean(list(after.values())) > np.mean(list(before.values()))


def test_consistency_between_formal_and_empirical_feedback(benchmark, dpoaf_run):
    """Section 5.2: empirical evaluation is a substitute for formal verification."""
    pipeline, result = dpoaf_run
    specs = core_specifications()

    from repro.driving import response_templates, task_by_name
    from repro.feedback import EmpiricalEvaluator, FormalVerifier

    task = task_by_name("turn_right_traffic_light")
    responses = list(response_templates(task.name, "compliant")[:2]) + list(response_templates(task.name, "flawed")[:2])

    def run():
        verifier = FormalVerifier(specs)
        formal_scores = [verifier.verify_response(task.model(), r, task=task.name).num_satisfied for r in responses]
        evaluator = EmpiricalEvaluator(specs, SimulationGrounding(task.scenario, max_steps=25), threshold=0.9)
        empirical_scores = []
        for response in responses:
            controller = build_controller_from_text(response, task=task.name)
            empirical_scores.append(evaluator.evaluate_controller(controller, num_traces=15, seed=3).mean_satisfaction)
        return formal_scores, empirical_scores

    formal_scores, empirical_scores = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (f"response_{i}", formal_scores[i], empirical_scores[i])
        for i in range(len(responses))
    ]
    print_table("Formal vs empirical feedback (right-turn responses)", ["response", "formal (of 5)", "empirical mean P_Φ"], rows)

    # The two feedback channels must agree on which responses are best:
    # compliant responses (indices 0, 1) beat flawed ones (indices 2, 3).
    assert min(formal_scores[:2]) >= max(formal_scores[2:])
    assert min(empirical_scores[:2]) >= max(empirical_scores[2:]) - 0.05
