"""Overhead of the tracing layer (ISSUE acceptance bounds).

Measured claims: with tracing *disabled* (the default ``NullTracer``), the
per-span cost is a shared no-op context manager — the bound asserted here is
that the no-op cost summed over every span the traced run actually emitted
stays under 2% of the untraced wall clock.  With tracing *enabled* (JSONL
shard sink flushing every record), a fully-instrumented verification workload
stays within 10% of the untraced baseline.  Both runs must produce
bitwise-identical scores — the parity tests in ``tests/obs`` assert that on
every backend; here it is re-checked on the measured workload so the numbers
in the table describe equivalent work.
"""

import time
import timeit

from repro.core.config import FeedbackConfig
from repro.driving import all_specifications, response_templates, training_tasks
from repro.obs import tracer as obs
from repro.obs.tracer import Tracer
from repro.serving import FeedbackJob, FeedbackService, ServingConfig

from conftest import print_table

#: Acceptance bounds from the issue: disabled <2%, enabled <10%.
DISABLED_OVERHEAD_BOUND = 0.02
ENABLED_OVERHEAD_BOUND = 0.10


def _workload() -> list:
    """Cold verification jobs — no cache, no dedup, all formal checking."""
    jobs = []
    for task in training_tasks()[:4]:
        for kind in ("compliant", "flawed"):
            for response in response_templates(task.name, kind):
                jobs.append(FeedbackJob(task=task.name, scenario=task.scenario, response=response))
    return jobs


def _score(jobs: list) -> tuple:
    """One cold pass with serving disabled: every job is verified, every
    verification emits mc.* spans when a tracer is installed."""
    service = FeedbackService(
        all_specifications(), feedback=FeedbackConfig(), config=ServingConfig(enabled=False)
    )
    start = time.perf_counter()
    scores = service.score_batch(jobs)
    return scores, time.perf_counter() - start


def test_bench_obs_tracing_overhead(benchmark, tmp_path):
    jobs = _workload()

    def run():
        # Interleave baseline and traced passes to cancel drift; keep the best
        # of two for each so a scheduler hiccup doesn't decide the ratio.
        obs.uninstall_tracer()
        baseline_scores, warmup_seconds = _score(jobs)  # warm imports/caches
        baseline_seconds = min(_score(jobs)[1], _score(jobs)[1])
        tracer = obs.install_tracer(Tracer.for_trace_file(tmp_path / "run.trace.json"))
        try:
            traced_scores, _ = _score(jobs)
            traced_seconds = min(_score(jobs)[1], _score(jobs)[1])
            span_count = len(tracer.all_spans())
        finally:
            obs.uninstall_tracer()
            tracer.close()
        # Disabled cost: the measured price of one no-op span round trip,
        # multiplied by how many spans this workload would have emitted.
        noop_iterations = 100_000
        noop_seconds = timeit.timeit(
            lambda: obs.span("mc.check", category="modelcheck", spec="phi_1").__enter__()
            or obs.current_tracer(),
            number=noop_iterations,
        )
        per_noop = noop_seconds / noop_iterations
        return (
            baseline_scores,
            traced_scores,
            baseline_seconds,
            traced_seconds,
            span_count,
            per_noop,
            warmup_seconds,
        )

    (
        baseline_scores,
        traced_scores,
        baseline_seconds,
        traced_seconds,
        span_count,
        per_noop,
        warmup_seconds,
    ) = benchmark.pedantic(run, rounds=1, iterations=1)

    enabled_overhead = traced_seconds / baseline_seconds - 1.0
    disabled_overhead = (span_count * per_noop) / baseline_seconds
    print_table(
        "Tracing overhead — cold verification workload",
        ["mode", "seconds", "overhead vs off"],
        [
            ("untraced (NullTracer)", baseline_seconds, "—"),
            ("traced (JSONL sink)", traced_seconds, f"{enabled_overhead:+.1%}"),
            (
                f"disabled, {span_count} no-op spans",
                span_count * per_noop,
                f"{disabled_overhead:+.2%}",
            ),
        ],
    )
    assert traced_scores == baseline_scores, "tracing must not change scores"
    assert span_count > 100, "the traced pass should have recorded real spans"
    assert disabled_overhead < DISABLED_OVERHEAD_BOUND, (
        f"disabled tracing costs {disabled_overhead:.2%} of the run "
        f"({span_count} spans x {per_noop * 1e9:.0f}ns no-op), bound is "
        f"{DISABLED_OVERHEAD_BOUND:.0%}"
    )
    assert enabled_overhead < ENABLED_OVERHEAD_BOUND, (
        f"enabled tracing adds {enabled_overhead:.1%}, bound is "
        f"{ENABLED_OVERHEAD_BOUND:.0%}: traced {traced_seconds:.2f}s vs "
        f"untraced {baseline_seconds:.2f}s"
    )
