"""Figures 12 and 13: vision-model consistency across simulation and reality.

Figure 12: confidence-accuracy calibration of the simulated detector on the
simulation-domain and real-domain synthetic datasets, per object category and
overall — the curves must coincide (the sim-to-real transfer argument).

Figure 13: detection accuracy under different weather/lighting conditions in
both domains (a quantitative stand-in for the paper's qualitative image grid).
"""

from repro.perception import (
    CATEGORIES,
    SimulatedDetector,
    WEATHER_CONDITIONS,
    compare_domains,
    detection_accuracy,
    generate_dataset,
)

from conftest import print_table

SCENES_PER_DOMAIN = 600


def test_fig12_confidence_accuracy_calibration(benchmark):
    detector = SimulatedDetector()

    def run():
        scenes = generate_dataset("simulation", SCENES_PER_DOMAIN, seed=0) + generate_dataset(
            "real", SCENES_PER_DOMAIN, seed=1
        )
        detections = detector.detect_dataset(scenes, seed=2)
        return compare_domains(detections)

    comparison = benchmark.pedantic(run, rounds=1, iterations=1)

    for category in ("overall", *CATEGORIES):
        sim = comparison.curve("simulation", category)
        real = comparison.curve("real", category)
        rows = [
            (center, sim_smooth, real_smooth)
            for center, sim_smooth, real_smooth in zip(sim.bin_centers, sim.smoothed, real.smoothed)
        ]
        print_table(
            f"Figure 12 — confidence vs accuracy ({category}); smoothed estimation",
            ["confidence", "simulation", "real"],
            rows,
        )

    assert comparison.is_consistent(tolerance=0.15), (
        "the detector must behave consistently in simulation and reality "
        f"(gaps: {[round(comparison.max_gap(c), 3) for c in ('overall', *CATEGORIES)]})"
    )


def test_fig13_weather_conditions(benchmark):
    detector = SimulatedDetector()

    def run():
        rows = []
        for weather in WEATHER_CONDITIONS:
            sim = detector.detect_dataset(generate_dataset("simulation", 250, weather=weather, seed=0), seed=1)
            real = detector.detect_dataset(generate_dataset("real", 250, weather=weather, seed=2), seed=3)
            rows.append((weather, detection_accuracy(sim), detection_accuracy(real)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Figure 13 — detection accuracy per weather condition", ["weather", "simulation", "real"], rows)

    accuracy = {weather: (sim, real) for weather, sim, real in rows}
    # Degraded conditions hurt both domains, and the domains stay close.
    assert accuracy["night"][0] < accuracy["sunny"][0]
    assert accuracy["night"][1] < accuracy["sunny"][1]
    assert all(abs(sim - real) < 0.2 for _, sim, real in rows)
