"""Figures 7 and 18: controllers before/after fine-tuning and their verification.

Regenerates the Section 5.1 demonstration: the pre-fine-tuning right-turn
controller violates Φ5 (with the red-light/car-from-left counter-example), the
post-fine-tuning controller satisfies it; the pre-fine-tuning left-turn
controller violates Φ12/Φ2-style protected-turn rules, the post-fine-tuning
one does not.
"""

from repro.driving import all_specifications, response_templates, task_by_name
from repro.feedback import FormalVerifier

from conftest import print_table


def _verify(task_name: str, category: str, index: int) -> tuple:
    task = task_by_name(task_name)
    verifier = FormalVerifier(all_specifications())
    response = response_templates(task_name, category)[index]
    feedback = verifier.verify_response(task.model(), response, task=f"{task_name}/{category}")
    return feedback.num_satisfied, feedback.violated


def test_fig7_right_turn_before_vs_after(benchmark):
    def run():
        before = _verify("turn_right_traffic_light", "flawed", 0)      # the paper's Figure-7-left response
        after = _verify("turn_right_traffic_light", "compliant", 2)    # the paper's Figure-7-right response
        return before, after

    (before, after) = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Figure 7 — right turn at the traffic light (15 specifications)",
        ["controller", "satisfied", "violated"],
        [
            ["before fine-tuning", before[0], ", ".join(before[1])],
            ["after fine-tuning", after[0], ", ".join(after[1]) or "-"],
        ],
    )
    assert "phi_5" in before[1], "the pre-fine-tuning controller must fail Φ5 (Section 5.1)"
    assert "phi_5" not in after[1]
    assert after[0] > before[0]


def test_fig18_left_turn_before_vs_after(benchmark):
    def run():
        before = _verify("turn_left_protected", "flawed", 0)           # the paper's Appendix-C response
        after = _verify("turn_left_protected", "compliant", 0)         # the paper's Figure-18-right response
        return before, after

    (before, after) = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Figure 18 — protected left turn (15 specifications)",
        ["controller", "satisfied", "violated"],
        [
            ["before fine-tuning", before[0], ", ".join(before[1])],
            ["after fine-tuning", after[0], ", ".join(after[1]) or "-"],
        ],
    )
    assert set(before[1]) & {"phi_2", "phi_12"}, "the pre-fine-tuning left turn must violate a protected-turn rule"
    assert not set(after[1]) & {"phi_2", "phi_12"}
    assert after[0] > before[0]
