"""Training-start latency: streamed vs blocking DPO training-data path.

The claim under benchmark: with ``stream_training=True`` the first trainable
mini-batch is ready **well before** blocking end-to-end verification would
have completed — the pipeline's verify → rank → encode → train stages
genuinely overlap.  Verification is slowed by a fixed per-response delay so
the measurement reflects the architecture, not the toy verifier's speed: in
the blocking world, training cannot start until every response has paid that
delay; streamed, training starts after the warm-up fraction of tasks.
"""

from __future__ import annotations

import dataclasses
import time

from repro.core import DPOAFPipeline
from repro.core.config import quick_pipeline_config
from repro.dpo import DPODataset
from repro.driving import core_specifications, training_tasks

from conftest import print_table

#: Artificial per-response verification cost (seconds) — stands in for the
#: model checker on a paper-scale rule book.
VERIFY_DELAY = 0.05


def _slow_verification(pipeline: DPOAFPipeline) -> None:
    original = pipeline.serving._scorer.score

    def slowed(*args, **kwargs):
        time.sleep(VERIFY_DELAY)
        return original(*args, **kwargs)

    pipeline.serving._scorer.score = slowed


def test_bench_streaming_training_start_latency(benchmark):
    """First trainable mini-batch arrives measurably before the producer —
    sampling + slowed verification + ranking — has finished."""
    base = quick_pipeline_config(seed=0)
    streaming_config = dataclasses.replace(
        base, stream_training=True, stream_warmup_fraction=0.25
    )
    kwargs = dict(
        specifications=core_specifications(), tasks=training_tasks()[:4], validation=()
    )

    def run():
        # Blocking reference: how long the training data takes end to end
        # when nothing overlaps (sample -> verify -> rank -> encode).
        with DPOAFPipeline(dataclasses.replace(base), **kwargs) as pipeline:
            _slow_verification(pipeline)
            pretrain = pipeline.pretrain_model()
            # Mirror run()'s sequence (before-training evaluation warms the
            # feedback cache there too) so both paths time collect/augment
            # from the same cache state.
            pipeline.evaluate_model(pretrain.model, pretrain.tokenizer)
            blocking_start = time.perf_counter()
            pairs = pipeline.collect_preference_pairs(pretrain.model, pretrain.tokenizer)
            pairs = pipeline.augment_with_templates(pairs)
            DPODataset.from_preference_pairs(
                pairs, pretrain.tokenizer, max_seq_len=pretrain.model.config.max_seq_len
            )
            blocking_seconds = time.perf_counter() - blocking_start

        with DPOAFPipeline(streaming_config, **kwargs) as pipeline:
            _slow_verification(pipeline)
            result = pipeline.run()
        return blocking_seconds, pairs, result

    blocking_seconds, blocking_pairs, streamed = benchmark.pedantic(run, rounds=1, iterations=1)
    telemetry = streamed.stream_telemetry
    first_trainable = telemetry["first_trainable_pair_seconds"]

    print_table(
        "Streaming DPO training-data path — training-start latency",
        ["path", "training data ready (s)", "overlap"],
        [
            ("blocking verify→encode", blocking_seconds, "none"),
            ("streamed first trainable batch", first_trainable,
             f"warm-up {telemetry['warmup_fraction']:.0%} of tasks"),
            ("streamed producer total", telemetry["producer_seconds"], "verify/rank"),
        ],
    )

    # Same training data either way.
    assert streamed.preference_pairs == blocking_pairs
    assert telemetry["pairs_encoded"] == len(blocking_pairs)
    # The acceptance claim: training starts well below blocking end-to-end
    # verification time.  Warm-up is 1/4 of the tasks, so even with generous
    # slack the streamed start must beat 60% of the blocking wall clock.
    assert first_trainable < 0.6 * blocking_seconds, (
        f"streamed training started at {first_trainable:.2f}s; "
        f"blocking data path took {blocking_seconds:.2f}s"
    )
    # And the streamed producer itself is no slower than the blocking path
    # beyond noise: the same verification work, just overlapped downstream.
    assert telemetry["producer_seconds"] < blocking_seconds * 1.5
