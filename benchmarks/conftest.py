"""Shared fixtures for the benchmark harness.

The expensive artifact — a full DPO-AF pipeline run with checkpoint
evaluations — is built once per benchmark session and reused by the Figure 9,
Figure 11 and headline benchmarks.  Every benchmark prints the table/series it
regenerates so the console output can be compared directly with the paper.
"""

from __future__ import annotations

import os

import pytest

from repro.core import DPOAFPipeline, PipelineConfig
from repro.core.config import FeedbackConfig, SamplingConfig
from repro.dpo import DPOConfig
from repro.driving import all_specifications
from repro.lm import PretrainConfig


def pytest_collection_modifyitems(config, items):
    """Guard single-core containers from the multicore speedup assertions.

    The ``multicore``-marked benchmarks assert real process-pool *speedups*,
    which one core cannot deliver; each already skips itself defensively, but
    marking them skipped at collection time means even an explicit
    ``-m multicore`` run on a single-core box reports an honest skip instead
    of executing minutes of benchmark just to skip at the assert.  Running
    ``pytest -m "not multicore"`` (the ``make bench`` target) excludes them
    outright on any machine.
    """
    if (os.cpu_count() or 1) >= 2:
        return
    skip = pytest.mark.skip(reason="multicore benchmarks need >= 2 CPU cores")
    for item in items:
        if "multicore" in item.keywords:
            item.add_marker(skip)


def benchmark_pipeline_config(seed: int = 0) -> PipelineConfig:
    """The configuration used to regenerate the paper's figures.

    Scaled from the paper's Llama2-7B / ~3000-pair / 200-epoch setup down to a
    few CPU-minutes; all qualitative trends are preserved (see EXPERIMENTS.md).
    """
    return PipelineConfig(
        pretrain=PretrainConfig(num_steps=280, batch_size=16, seed=seed),
        dpo=DPOConfig(
            num_epochs=25,
            batch_size=12,
            learning_rate=3e-3,
            beta=1.0,
            lora_rank=8,
            checkpoint_every=5,
            seed=seed,
        ),
        sampling=SamplingConfig(responses_per_prompt=4),
        feedback=FeedbackConfig(),
        corpus_samples_per_task=28,
        seed=seed,
    )


@pytest.fixture(scope="session")
def dpoaf_run():
    """One full DPO-AF pipeline run shared by the model-level benchmarks."""
    pipeline = DPOAFPipeline(benchmark_pipeline_config(seed=0), specifications=all_specifications())
    result = pipeline.run(evaluate_checkpoints=True)
    yield pipeline, result
    # Release the serving layer's dispatcher thread / worker pool at session
    # end — dependent benchmarks still score through the pipeline until then.
    pipeline.close()


def print_table(title: str, header: list, rows: list) -> None:
    """Console rendering of a benchmark's result table."""
    print(f"\n=== {title} ===")
    print(" | ".join(f"{h:>18}" for h in header))
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(f"{value:>18.3f}")
            else:
                cells.append(f"{str(value):>18}")
        print(" | ".join(cells))
