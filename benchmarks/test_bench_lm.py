"""Tokens/s and DPO-throughput benchmarks for the vectorized LM core.

Run via ``make bench-lm``.  Three decode paths sample the same frontier —
every training-task prompt × 4 lanes — from identical per-lane RNG streams:

* **serial** — ``sample_tokens``: full-context forward per token per lane;
* **kv** — ``sample_tokens_cached``: single-lane KV cache, O(T) per step;
* **batched** — ``sample_tokens_batched``: the whole frontier as one wave.

The determinism contract makes the comparison honest: all three paths must
produce *bitwise-identical* token lists (asserted), so the tokens/s numbers
measure the same work.  The batched path must clear a ≥ 3× floor over serial.

The DPO half measures ``pairs_per_second`` / ``steps_per_second`` from
``DPOResult.throughput`` (fused stacked forwards, the default) and times a
fused vs unfused ``dpo_step`` on a fixed batch.  All measurements land in
``runs/bench_lm.json`` for trend tracking across commits.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from conftest import print_table
from repro.dpo import DPOConfig, DPODataset, dpo_step, run_dpo
from repro.driving import training_tasks
from repro.driving.responses import response_templates
from repro.feedback import PreferencePair
from repro.lm import (
    LaneSpec,
    LoRAConfig,
    PretrainConfig,
    apply_lora,
    build_corpus,
    format_prompt,
    pretrain,
    sample_tokens,
    sample_tokens_batched,
    sample_tokens_cached,
)
from repro.utils.atomic import write_text_atomic
from repro.utils.rng import seeded_rng, spawn_lane_rngs

BENCH_SEED = 0
LANES_PER_PROMPT = 4
MAX_NEW_TOKENS = 64
TEMPERATURE = 0.9
TOP_K = 20
SPEEDUP_FLOOR = 3.0
RESULTS_PATH = Path(__file__).resolve().parent.parent / "runs" / "bench_lm.json"


@pytest.fixture(scope="module")
def pretrained():
    """A small pretrained model + tokenizer shared by both benchmark halves."""
    corpus = build_corpus(samples_per_task=12, seed=BENCH_SEED)
    result = pretrain(corpus, PretrainConfig(num_steps=60, batch_size=12, seed=BENCH_SEED))
    return result.model, result.tokenizer


def _lane_families(prompt_count: int):
    """The per-prompt RNG families every decode path must consume identically."""
    rng = seeded_rng(BENCH_SEED)
    return [spawn_lane_rngs(rng, LANES_PER_PROMPT) for _ in range(prompt_count)]


def _frontier(tokenizer):
    """(prompt_ids, stop_ids) for every lane of the benchmark frontier."""
    prompts = [format_prompt(task) for task in training_tasks()]
    encoded = [tuple(tokenizer.encode(prompt, add_bos=True)) for prompt in prompts]
    return encoded, (tokenizer.eos_id,)


def _template_pairs() -> list:
    """Template-derived preference pairs — scoring-free, so the DPO half
    measures training throughput, not verification."""
    pairs = []
    for task in training_tasks():
        prompt = format_prompt(task)
        compliant = response_templates(task.name, "compliant")
        flawed = response_templates(task.name, "flawed")
        for chosen, rejected in zip(compliant, flawed):
            pairs.append(
                PreferencePair(
                    prompt=prompt,
                    chosen=chosen,
                    rejected=rejected,
                    chosen_score=12.0,
                    rejected_score=5.0,
                    task=task.name,
                )
            )
    return pairs


def _persist(payload: dict) -> None:
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    write_text_atomic(RESULTS_PATH, json.dumps(payload, indent=2) + "\n")


def test_bench_tokens_per_second(pretrained):
    model, tokenizer = pretrained
    encoded, stop_ids = _frontier(tokenizer)

    def decode_serial(step_fn):
        tokens, elapsed = [], 0.0
        for prompt_ids, family in zip(encoded, _lane_families(len(encoded))):
            for lane_rng in family:
                started = time.perf_counter()
                tokens.append(
                    step_fn(
                        model,
                        list(prompt_ids),
                        max_new_tokens=MAX_NEW_TOKENS,
                        temperature=TEMPERATURE,
                        top_k=TOP_K,
                        stop_ids=stop_ids,
                        seed=lane_rng,
                    )
                )
                elapsed += time.perf_counter() - started
        return tokens, elapsed

    serial_tokens, serial_s = decode_serial(sample_tokens)
    kv_tokens, kv_s = decode_serial(sample_tokens_cached)

    lanes = [
        LaneSpec(
            prompt_ids=prompt_ids,
            rng=lane_rng,
            max_new_tokens=MAX_NEW_TOKENS,
            temperature=TEMPERATURE,
            top_k=TOP_K,
            stop_ids=stop_ids,
        )
        for prompt_ids, family in zip(encoded, _lane_families(len(encoded)))
        for lane_rng in family
    ]
    started = time.perf_counter()
    batched_tokens = sample_tokens_batched(model, lanes)
    batched_s = time.perf_counter() - started

    # Identical work across all three paths — the tokens/s comparison is only
    # meaningful because the outputs are bitwise-identical.
    assert kv_tokens == serial_tokens
    assert batched_tokens == serial_tokens
    decoded = [tokenizer.decode(t[:-1] if t and t[-1] == tokenizer.eos_id else t) for t in serial_tokens]
    assert decoded == [
        tokenizer.decode(t[:-1] if t and t[-1] == tokenizer.eos_id else t) for t in batched_tokens
    ]

    total = sum(len(t) for t in serial_tokens)
    serial_tps = total / serial_s
    kv_tps = total / kv_s
    batched_tps = total / batched_s
    speedup = batched_tps / serial_tps

    print_table(
        "LM decoding throughput (identical sampled tokens)",
        ["path", "tokens", "seconds", "tokens/s", "vs serial"],
        [
            ["serial full-context", total, serial_s, serial_tps, 1.0],
            ["kv single-lane", total, kv_s, kv_tps, kv_tps / serial_tps],
            [f"batched x{len(lanes)}", total, batched_s, batched_tps, speedup],
        ],
    )

    assert speedup >= SPEEDUP_FLOOR, (
        f"batched decoding reached only {speedup:.2f}x over serial "
        f"(floor {SPEEDUP_FLOOR}x): {batched_tps:.0f} vs {serial_tps:.0f} tokens/s"
    )
    assert kv_tps > serial_tps, "the KV cache must beat full-context re-forwards"

    test_bench_tokens_per_second.results = {
        "lanes": len(lanes),
        "max_new_tokens": MAX_NEW_TOKENS,
        "total_tokens": total,
        "serial_tokens_per_s": serial_tps,
        "kv_tokens_per_s": kv_tps,
        "batched_tokens_per_s": batched_tps,
        "batched_speedup": speedup,
    }


def test_bench_dpo_throughput(pretrained):
    model, tokenizer = pretrained
    pairs = _template_pairs()

    result = run_dpo(
        model.clone(),
        tokenizer,
        pairs,
        DPOConfig(num_epochs=4, batch_size=8, learning_rate=3e-3, beta=1.0, lora_rank=4, seed=BENCH_SEED),
    )
    throughput = result.throughput
    assert throughput["pairs"] == len(pairs) * 4
    assert throughput["pairs_per_second"] > 0.0
    assert throughput["steps_per_second"] > 0.0

    # Fused vs unfused step cost on one fixed batch (same pairs, same models;
    # gradients are computed but never applied, so every repetition sees
    # identical weights).
    dataset = DPODataset.from_preference_pairs(pairs, tokenizer, max_seq_len=model.config.max_seq_len)
    batch = dataset.batch(range(min(8, len(dataset))))
    policy = model.clone()
    apply_lora(policy, LoRAConfig(rank=4, seed=BENCH_SEED))
    reference = model.clone()
    reps = 8
    timings = {}
    for fused in (True, False):
        dpo_step(policy, reference, batch, beta=1.0, fused=fused)  # warm caches
        started = time.perf_counter()
        for _ in range(reps):
            dpo_step(policy, reference, batch, beta=1.0, fused=fused)
        timings[fused] = (time.perf_counter() - started) / reps
    fused_speedup = timings[False] / timings[True]

    print_table(
        "DPO training throughput (fused stacked forwards)",
        ["metric", "value"],
        [
            ["steps", throughput["steps"]],
            ["pairs", throughput["pairs"]],
            ["steps/s", throughput["steps_per_second"]],
            ["pairs/s", throughput["pairs_per_second"]],
            ["fused step s", timings[True]],
            ["unfused step s", timings[False]],
            ["fused speedup", fused_speedup],
        ],
    )

    # The fused win at this toy scale is one saved reference forward — small
    # enough that run-to-run noise can eat it, so this is a regression guard
    # (fused must never be *meaningfully* slower), not a strict win.
    assert timings[True] < timings[False] * 1.15, (
        f"fused step {timings[True]:.4f}s vs unfused {timings[False]:.4f}s "
        "— fusion regressed"
    )

    sampling = getattr(test_bench_tokens_per_second, "results", {})
    _persist(
        {
            "seed": BENCH_SEED,
            "sampling": sampling,
            "dpo": {
                "steps": throughput["steps"],
                "pairs": throughput["pairs"],
                "seconds": throughput["seconds"],
                "steps_per_second": throughput["steps_per_second"],
                "pairs_per_second": throughput["pairs_per_second"],
                "fused_step_seconds": timings[True],
                "unfused_step_seconds": timings[False],
                "fused_speedup": fused_speedup,
            },
        }
    )
    assert RESULTS_PATH.exists()
