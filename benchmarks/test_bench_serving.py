"""Cold- vs warm-cache throughput of the feedback-serving subsystem.

The workload mirrors preference-pair collection: every task's response
library, with duplicates, scored against the full 15-rule book — including
the highway-merge scenario that exists only in the serving workload.  The
cold pass verifies every unique response; the warm pass must answer from the
cache, which is where the ≥2× throughput claim comes from.
"""

import time

from repro.core.config import FeedbackConfig
from repro.driving import all_specifications, response_templates, training_tasks
from repro.driving.tasks import DrivingTask
from repro.serving import FeedbackJob, FeedbackService, ServingConfig

from conftest import print_table

#: The extra scenario exercised only through the serving workload.
MERGE_TASK = DrivingTask(
    name="merge_onto_highway",
    prompt="merge onto the highway",
    scenario="highway_merge",
    split="train",
)

DUPLICATES_PER_RESPONSE = 3


def _workload() -> list:
    """Every template for a spread of tasks, duplicated as sampling would."""
    jobs = []
    for task in list(training_tasks()[:4]) + [MERGE_TASK]:
        responses = list(response_templates(task.name, "compliant"))
        responses += list(response_templates(task.name, "flawed"))
        for response in responses * DUPLICATES_PER_RESPONSE:
            jobs.append(FeedbackJob(task=task.name, scenario=task.scenario, response=response))
    return jobs


def test_bench_serving_cold_vs_warm_throughput(benchmark):
    jobs = _workload()
    service = FeedbackService(
        all_specifications(),
        feedback=FeedbackConfig(),
        config=ServingConfig(backend="thread", max_workers=4, cache_size=4096),
    )

    def run():
        cold_start = time.perf_counter()
        cold_scores = service.score_batch(jobs)
        cold_seconds = time.perf_counter() - cold_start
        warm_start = time.perf_counter()
        warm_scores = service.score_batch(jobs)
        warm_seconds = time.perf_counter() - warm_start
        return cold_scores, warm_scores, cold_seconds, warm_seconds

    cold_scores, warm_scores, cold_seconds, warm_seconds = benchmark.pedantic(run, rounds=1, iterations=1)

    cold_throughput = len(jobs) / cold_seconds
    warm_throughput = len(jobs) / warm_seconds
    stats = service.cache.stats()
    print_table(
        "Feedback serving — cold vs warm cache",
        ["pass", "responses", "seconds", "responses/s"],
        [
            ("cold", len(jobs), cold_seconds, cold_throughput),
            ("warm", len(jobs), warm_seconds, warm_throughput),
        ],
    )
    print_table(
        "Serving telemetry",
        ["dedup rate", "cache hit rate", "cache size", "unique verified"],
        [(service.metrics.dedup_rate, stats.hit_rate, stats.size, stats.misses)],
    )

    assert warm_scores == cold_scores, "cache must not change scores"
    assert warm_throughput >= 2 * cold_throughput, (
        f"warm cache should be >=2x faster: cold {cold_throughput:.1f}/s, warm {warm_throughput:.1f}/s"
    )
    assert service.metrics.dedup_rate > 0, "duplicated workload must dedup"
    assert stats.hit_rate > 0, "warm pass must hit the cache"


def test_bench_serving_beats_serial_rescoring(benchmark):
    """The service's whole point: repeated scoring is cheaper than the serial loop."""
    jobs = _workload()
    serial = FeedbackService(
        all_specifications(), feedback=FeedbackConfig(), config=ServingConfig(enabled=False)
    )
    served = FeedbackService(all_specifications(), feedback=FeedbackConfig())

    def run():
        serial_start = time.perf_counter()
        serial_scores = serial.score_batch(jobs)
        serial_seconds = time.perf_counter() - serial_start
        served_start = time.perf_counter()
        served_scores = served.score_batch(jobs)
        served_seconds = time.perf_counter() - served_start
        return serial_scores, serial_seconds, served_scores, served_seconds

    serial_scores, serial_seconds, served_scores, served_seconds = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print_table(
        "Serial loop vs deduplicating service (same cold workload)",
        ["path", "seconds", "responses/s"],
        [
            ("serial", serial_seconds, len(jobs) / serial_seconds),
            ("service", served_seconds, len(jobs) / served_seconds),
        ],
    )
    assert served_scores == serial_scores
    # Dedup alone removes ~2/3 of the verification work on this workload.
    assert served_seconds < serial_seconds
