"""Throughput of the feedback-serving subsystem.

Measured claims: a warm cache answers a repeated workload ≥2× faster than
the cold pass; dedup alone beats the serial rescoring loop; the ``"process"``
backend scales cold-batch formal verification with worker count on multi-core
machines (on a single-core machine the sweep still runs and must stay
score-identical, but no speedup is asserted — the hard speedup assertion
lives in the ``multicore``-marked benchmark, selectable with ``-m multicore``
on capable CI); a persistent :class:`WorkerPool` forks its executor once for
a whole stream of cold batches where the per-batch path forks once *per*
batch; async ``submit_batch`` queues batches without blocking on
verification; and flush-time compaction keeps a bounded shared cache
directory under its entry budget across runs.  The workload mirrors
preference-pair collection: every task's response library, with duplicates,
scored against the full 15-rule book — including the highway-merge scenario
(``merge_onto_highway``, now in the task catalogue).
"""

import os
import time

import pytest

from repro.core.config import FeedbackConfig
from repro.driving import all_specifications, response_templates, task_by_name, training_tasks
from repro.serving import (
    CacheDirectory,
    FeedbackJob,
    FeedbackService,
    ServingConfig,
    WorkerPayload,
    WorkerPool,
)
from repro.serving.backends import run_process

from conftest import print_table

#: The highway-merge task (wired into the catalogue's training split).
MERGE_TASK = task_by_name("merge_onto_highway")

DUPLICATES_PER_RESPONSE = 3


def _workload(duplicates: int = DUPLICATES_PER_RESPONSE) -> list:
    """Every template for a spread of tasks, duplicated as sampling would."""
    jobs = []
    for task in list(training_tasks()[:4]) + [MERGE_TASK]:
        responses = list(response_templates(task.name, "compliant"))
        responses += list(response_templates(task.name, "flawed"))
        for response in responses * duplicates:
            jobs.append(FeedbackJob(task=task.name, scenario=task.scenario, response=response))
    return jobs


def test_bench_serving_cold_vs_warm_throughput(benchmark):
    jobs = _workload()
    service = FeedbackService(
        all_specifications(),
        feedback=FeedbackConfig(),
        config=ServingConfig(backend="thread", max_workers=4, cache_size=4096),
    )

    def run():
        cold_start = time.perf_counter()
        cold_scores = service.score_batch(jobs)
        cold_seconds = time.perf_counter() - cold_start
        warm_start = time.perf_counter()
        warm_scores = service.score_batch(jobs)
        warm_seconds = time.perf_counter() - warm_start
        return cold_scores, warm_scores, cold_seconds, warm_seconds

    cold_scores, warm_scores, cold_seconds, warm_seconds = benchmark.pedantic(run, rounds=1, iterations=1)

    cold_throughput = len(jobs) / cold_seconds
    warm_throughput = len(jobs) / warm_seconds
    stats = service.cache.stats()
    print_table(
        "Feedback serving — cold vs warm cache",
        ["pass", "responses", "seconds", "responses/s"],
        [
            ("cold", len(jobs), cold_seconds, cold_throughput),
            ("warm", len(jobs), warm_seconds, warm_throughput),
        ],
    )
    print_table(
        "Serving telemetry",
        ["dedup rate", "cache hit rate", "cache size", "unique verified"],
        [(service.metrics.dedup_rate, stats.hit_rate, stats.size, stats.misses)],
    )

    assert warm_scores == cold_scores, "cache must not change scores"
    assert warm_throughput >= 2 * cold_throughput, (
        f"warm cache should be >=2x faster: cold {cold_throughput:.1f}/s, warm {warm_throughput:.1f}/s"
    )
    assert service.metrics.dedup_rate > 0, "duplicated workload must dedup"
    assert stats.hit_rate > 0, "warm pass must hit the cache"


def test_bench_serving_beats_serial_rescoring(benchmark):
    """The service's whole point: repeated scoring is cheaper than the serial loop."""
    jobs = _workload()
    serial = FeedbackService(
        all_specifications(), feedback=FeedbackConfig(), config=ServingConfig(enabled=False)
    )
    served = FeedbackService(all_specifications(), feedback=FeedbackConfig())

    def run():
        serial_start = time.perf_counter()
        serial_scores = serial.score_batch(jobs)
        serial_seconds = time.perf_counter() - serial_start
        served_start = time.perf_counter()
        served_scores = served.score_batch(jobs)
        served_seconds = time.perf_counter() - served_start
        return serial_scores, serial_seconds, served_scores, served_seconds

    serial_scores, serial_seconds, served_scores, served_seconds = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print_table(
        "Serial loop vs deduplicating service (same cold workload)",
        ["path", "seconds", "responses/s"],
        [
            ("serial", serial_seconds, len(jobs) / serial_seconds),
            ("service", served_seconds, len(jobs) / served_seconds),
        ],
    )
    assert served_scores == serial_scores
    # Dedup alone removes ~2/3 of the verification work on this workload.
    assert served_seconds < serial_seconds


def _unique_cold_workload(copies: int = 4) -> list:
    """``copies`` canonically-distinct variants of every template — all misses.

    Each variant appends a different number of benign trailing steps, so no
    two share a canonical form (no dedup, no cache hits) while all remain
    parseable controllers.  This stretches the cold batch to a second or two
    of serial verification, giving the multi-core speedup assertion margins
    far wider than pool start-up noise.
    """
    jobs = []
    for job in _workload(duplicates=1):
        steps = len(job.response.splitlines())
        for copy in range(copies):
            suffix = "".join(
                f"\n{steps + 1 + extra}. If there is a pedestrian, stop." for extra in range(copy)
            )
            jobs.append(FeedbackJob(task=job.task, scenario=job.scenario, response=job.response + suffix))
    return jobs


def test_bench_serving_process_backend_worker_scaling(benchmark):
    """Cold formal batches through the process backend, sweeping pool width.

    Every response is unique (no dedup, no cache hits), so the whole batch is
    verification work — the workload the GIL-bound thread backend cannot
    accelerate.  Scores must be bitwise-identical across the sweep; the
    multi-core speedup is asserted only when the machine actually has the
    cores to show it.
    """
    base_jobs = _unique_cold_workload()
    sweeps = [("serial", 1), ("process", 1), ("process", 2), ("process", 4)]

    def run():
        results = {}
        for backend, workers in sweeps:
            service = FeedbackService(
                all_specifications(),
                feedback=FeedbackConfig(),
                config=ServingConfig(backend=backend, max_workers=workers, cache_size=4096),
            )
            start = time.perf_counter()
            scores = service.score_batch(base_jobs)
            seconds = time.perf_counter() - start
            results[(backend, workers)] = (scores, seconds)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (backend, workers, seconds, len(base_jobs) / seconds)
        for (backend, workers), (_, seconds) in results.items()
    ]
    print_table(
        f"Process backend — cold formal batch vs workers ({os.cpu_count()} cores available)",
        ["backend", "workers", "seconds", "responses/s"],
        rows,
    )

    reference = results[("serial", 1)][0]
    assert all(scores == reference for scores, _ in results.values()), (
        "every backend/worker combination must produce bitwise-identical scores"
    )
    if (os.cpu_count() or 1) >= 2:
        serial_seconds = results[("serial", 1)][1]
        best_process = min(results[("process", w)][1] for w in (2, 4))
        assert best_process < serial_seconds, (
            f"on a {os.cpu_count()}-core machine the process backend should beat "
            f"serial on a cold batch: serial {serial_seconds:.2f}s, process {best_process:.2f}s"
        )


def test_bench_serving_persistent_pool_amortizes_fork_cost(benchmark):
    """The tentpole claim: a stream of cold batches pays the process-pool
    fork/initializer cost once, not once per batch.

    The per-batch path (``run_process``, a throwaway pool per call — the
    pre-refactor behaviour) is measured against one persistent
    :class:`WorkerPool` scoring the same batch stream.  Scores must be
    bitwise-identical; the launch counts (``len(batches)`` vs 1) are the
    structural evidence, the wall-clock delta the measured one.
    """
    payload = WorkerPayload.from_feedback(all_specifications(), FeedbackConfig(), seed=0)
    fallback = payload.build_scorer()
    all_jobs = _unique_cold_workload(copies=2)
    batch_count = 6
    size = max(4, len(all_jobs) // batch_count)
    batches = [all_jobs[i : i + size] for i in range(0, len(all_jobs), size)]
    batches = [batch for batch in batches if len(batch) >= 4]

    def run():
        per_batch_start = time.perf_counter()
        per_batch_scores = [
            run_process(payload, batch, max_workers=2, fallback=fallback) for batch in batches
        ]
        per_batch_seconds = time.perf_counter() - per_batch_start
        pool = WorkerPool(payload, max_workers=2)
        persistent_start = time.perf_counter()
        persistent_scores = [pool.run(batch, fallback=fallback) for batch in batches]
        persistent_seconds = time.perf_counter() - persistent_start
        starts = pool.starts
        pool.close()
        return per_batch_scores, per_batch_seconds, persistent_scores, persistent_seconds, starts

    per_batch_scores, per_batch_seconds, persistent_scores, persistent_seconds, starts = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )
    jobs_total = sum(len(batch) for batch in batches)
    print_table(
        f"Process pool — per-batch fork vs persistent pool ({len(batches)} batches)",
        ["path", "pool launches", "seconds", "responses/s"],
        [
            ("per-batch pool", len(batches), per_batch_seconds, jobs_total / per_batch_seconds),
            ("persistent pool", starts, persistent_seconds, jobs_total / persistent_seconds),
        ],
    )
    assert persistent_scores == per_batch_scores, "pool reuse must not change scores"
    assert starts <= 1, "a persistent pool must fork its executor at most once"
    if starts == 1:
        # Multiprocessing works here, so the per-batch path really paid
        # len(batches) fork+initializer rounds; reuse must not be slower.
        assert persistent_seconds < per_batch_seconds, (
            f"persistent pool should beat per-batch forking: "
            f"{persistent_seconds:.2f}s vs {per_batch_seconds:.2f}s"
        )


@pytest.mark.multicore
def test_bench_serving_process_pool_speedup_multicore(benchmark):
    """Cold unique workload: the persistent process pool must beat the serial
    loop when real cores are available.

    Marked ``multicore`` (see pytest.ini): select it with ``-m multicore`` on
    a CI machine with >= 2 cores; on fewer cores it skips rather than assert
    a speedup the hardware cannot deliver.
    """
    if (os.cpu_count() or 1) < 2:
        pytest.skip("needs >= 2 CPU cores to demonstrate a process-pool speedup")
    jobs = _unique_cold_workload()

    def run():
        serial = FeedbackService(
            all_specifications(), feedback=FeedbackConfig(), config=ServingConfig(backend="serial")
        )
        serial_start = time.perf_counter()
        serial_scores = serial.score_batch(jobs)
        serial_seconds = time.perf_counter() - serial_start
        with FeedbackService(
            all_specifications(),
            feedback=FeedbackConfig(),
            config=ServingConfig(backend="process", max_workers=min(4, os.cpu_count() or 1)),
        ) as pooled:
            pooled_start = time.perf_counter()
            pooled_scores = pooled.score_batch(jobs)
            pooled_seconds = time.perf_counter() - pooled_start
        return serial_scores, serial_seconds, pooled_scores, pooled_seconds

    serial_scores, serial_seconds, pooled_scores, pooled_seconds = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print_table(
        f"Process pool speedup ({os.cpu_count()} cores)",
        ["backend", "seconds", "responses/s"],
        [
            ("serial", serial_seconds, len(jobs) / serial_seconds),
            ("process", pooled_seconds, len(jobs) / pooled_seconds),
        ],
    )
    assert pooled_scores == serial_scores
    assert pooled_seconds < serial_seconds, (
        f"process pool should beat serial on {os.cpu_count()} cores: "
        f"{pooled_seconds:.2f}s vs {serial_seconds:.2f}s"
    )


def test_bench_serving_async_submission_overlaps_batches(benchmark):
    """Streaming submission: every batch is queued before the first resolves,
    and the scores match the synchronous path exactly."""
    all_jobs = _workload()
    size = max(4, len(all_jobs) // 8)
    batches = [all_jobs[i : i + size] for i in range(0, len(all_jobs), size)]

    def run():
        sync = FeedbackService(all_specifications(), feedback=FeedbackConfig())
        sync_start = time.perf_counter()
        sync_scores = [sync.score_batch(batch) for batch in batches]
        sync_seconds = time.perf_counter() - sync_start
        with FeedbackService(all_specifications(), feedback=FeedbackConfig()) as service:
            submit_start = time.perf_counter()
            handles = [service.submit_batch(batch) for batch in batches]
            submit_seconds = time.perf_counter() - submit_start
            async_scores = [handle.result() for handle in handles]
            drain_seconds = time.perf_counter() - submit_start
        return sync_scores, sync_seconds, async_scores, submit_seconds, drain_seconds

    sync_scores, sync_seconds, async_scores, submit_seconds, drain_seconds = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print_table(
        f"Async submission — {len(batches)} batches",
        ["path", "submit s", "total s"],
        [
            ("score_batch (sync)", sync_seconds, sync_seconds),
            ("submit_batch (async)", submit_seconds, drain_seconds),
        ],
    )
    assert async_scores == sync_scores, "async submission must not change scores"
    # Submission is queueing, not verification: it must return far before the
    # work completes, leaving the producer free to keep sampling.
    assert submit_seconds < drain_seconds / 2


def test_bench_serving_streaming_pair_construction_overlaps_verification(benchmark):
    """Preference pairs are built from ``as_completed`` streaming: the first
    task's pairs exist while later tasks are still verifying, instead of pair
    construction starting only after every batch has been scored.  The
    streamed pair lists must be identical to the blocking path's (same pair
    set, bitwise-identical scores) — ``rank_to_pairs`` is order-independent,
    which is what makes the overlap safe."""
    from repro.feedback import rank_to_pairs
    from repro.lm import format_prompt
    from repro.serving import as_completed

    task_batches = []
    for task in list(training_tasks()[:4]) + [MERGE_TASK]:
        responses = list(response_templates(task.name, "compliant"))
        responses += list(response_templates(task.name, "flawed"))
        task_batches.append((task, responses))

    def run():
        # Blocking reference: score every batch, then build pairs.
        blocking_service = FeedbackService(all_specifications(), feedback=FeedbackConfig())
        blocking_start = time.perf_counter()
        scored = [
            (task, responses, blocking_service.score_responses(task, responses))
            for task, responses in task_batches
        ]
        blocking_verified_seconds = time.perf_counter() - blocking_start
        blocking_pairs = [
            rank_to_pairs(format_prompt(task), responses, scores, task=task.name)
            for task, responses, scores in scored
        ]
        blocking_total_seconds = time.perf_counter() - blocking_start

        # Streaming: build each task's pairs the moment its scores land.
        with FeedbackService(all_specifications(), feedback=FeedbackConfig()) as service:
            stream_start = time.perf_counter()
            pending = [
                (task, responses, service.submit_responses(task, responses))
                for task, responses in task_batches
            ]
            index_of = {handle: i for i, (_, _, handle) in enumerate(pending)}
            streamed_pairs: list = [None] * len(pending)
            first_pairs_at = None
            for handle in as_completed([handle for _, _, handle in pending]):
                i = index_of[handle]
                task, responses, _ = pending[i]
                streamed_pairs[i] = rank_to_pairs(
                    format_prompt(task), responses, handle.result(), task=task.name
                )
                if first_pairs_at is None:
                    first_pairs_at = time.perf_counter() - stream_start
            stream_total_seconds = time.perf_counter() - stream_start
        return (
            blocking_pairs,
            blocking_verified_seconds,
            blocking_total_seconds,
            streamed_pairs,
            first_pairs_at,
            stream_total_seconds,
        )

    (
        blocking_pairs,
        blocking_verified_seconds,
        blocking_total_seconds,
        streamed_pairs,
        first_pairs_at,
        stream_total_seconds,
    ) = benchmark.pedantic(run, rounds=1, iterations=1)

    print_table(
        f"Streaming pair construction — {len(task_batches)} task batches",
        ["path", "first pairs ready (s)", "total (s)"],
        [
            ("blocking (score all, then rank)", blocking_verified_seconds, blocking_total_seconds),
            ("streaming (as_completed)", first_pairs_at, stream_total_seconds),
        ],
    )
    assert streamed_pairs == blocking_pairs, (
        "streamed pairs must equal the blocking path's — same pair lists, bitwise scores"
    )
    # The overlap claim: the first task's pairs exist before the blocking
    # path would even have finished verification of the whole workload.
    assert first_pairs_at < blocking_verified_seconds, (
        f"streaming should start pair construction mid-verification: first pairs at "
        f"{first_pairs_at:.3f}s vs {blocking_verified_seconds:.3f}s of blocking verification"
    )


def test_bench_serving_backpressure_bounds_inflight_work(benchmark):
    """``submit_batch`` provably blocks at ``max_inflight_batches``: across a
    stream of cold submissions the observed in-flight count never exceeds the
    bound, the producer records blocked time, and the scores are unchanged."""
    max_inflight = 2
    all_jobs = _unique_cold_workload(copies=2)
    size = max(4, len(all_jobs) // 8)
    batches = [all_jobs[i : i + size] for i in range(0, len(all_jobs), size)]

    def run():
        reference_service = FeedbackService(all_specifications(), feedback=FeedbackConfig())
        reference = [reference_service.score_batch(batch) for batch in batches]
        with FeedbackService(
            all_specifications(),
            feedback=FeedbackConfig(),
            config=ServingConfig(max_inflight_batches=max_inflight),
        ) as service:
            observed_inflight = []
            submit_start = time.perf_counter()
            handles = []
            for batch in batches:
                handles.append(service.submit_batch(batch))
                with service._inflight:
                    observed_inflight.append(service._inflight_batches)
            submit_seconds = time.perf_counter() - submit_start
            scores = [handle.result() for handle in handles]
            total_seconds = time.perf_counter() - submit_start
            waits = service.metrics.backpressure_waits
            blocked_seconds = service.metrics.backpressure_seconds
        return scores, reference, observed_inflight, submit_seconds, total_seconds, waits, blocked_seconds

    scores, reference, observed_inflight, submit_seconds, total_seconds, waits, blocked_seconds = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )
    print_table(
        f"Back-pressure (max_inflight_batches={max_inflight}, {len(batches)} cold batches)",
        ["max in-flight seen", "blocked submits", "blocked s", "submit s", "total s"],
        [(max(observed_inflight), waits, blocked_seconds, submit_seconds, total_seconds)],
    )
    assert scores == reference, "back-pressure must not change scores"
    assert max(observed_inflight) <= max_inflight, (
        f"in-flight batches exceeded the bound: {max(observed_inflight)} > {max_inflight}"
    )
    # With far more batches than the bound, a fast producer must have blocked.
    assert waits > 0 and blocked_seconds > 0, "producer never hit the back-pressure gate"


def test_bench_serving_compaction_bounds_shard_size(benchmark, tmp_path):
    """A bounded shared cache directory stays under its budget across runs."""
    shared = str(tmp_path / "bounded_cache")
    max_entries = 32

    def run():
        sizes = []
        for round_index in range(3):
            with FeedbackService(
                all_specifications(),
                feedback=FeedbackConfig(),
                config=ServingConfig(
                    shared_cache_dir=shared, shared_cache_max_entries=max_entries
                ),
            ) as service:
                service.score_batch(_unique_cold_workload(copies=1 + round_index))
            directory = CacheDirectory(shared)
            sizes.append(
                (
                    round_index,
                    len(directory.shard_entries(service._fingerprint)),
                    sum(path.stat().st_size for path in directory.shard_files()),
                )
            )
        return sizes

    sizes = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"Shared cache compaction (shared_cache_max_entries={max_entries})",
        ["run", "shard entries", "directory bytes"],
        sizes,
    )
    assert all(entries <= max_entries for _, entries, _ in sizes), (
        "flush-time compaction must keep every shard under the entry budget"
    )


def test_bench_serving_shared_cache_dir_warm_starts_across_services(benchmark, tmp_path):
    """Two independent services sharing a cache directory: run 2 is all hits."""
    jobs = _workload()
    shared = str(tmp_path / "shared_cache")

    def run():
        first = FeedbackService(
            all_specifications(), feedback=FeedbackConfig(),
            config=ServingConfig(shared_cache_dir=shared),
        )
        cold_start = time.perf_counter()
        cold_scores = first.score_batch(jobs)
        cold_seconds = time.perf_counter() - cold_start
        first.flush()
        second = FeedbackService(
            all_specifications(), feedback=FeedbackConfig(),
            config=ServingConfig(shared_cache_dir=shared),
        )
        warm_start = time.perf_counter()
        warm_scores = second.score_batch(jobs)
        warm_seconds = time.perf_counter() - warm_start
        return first, second, cold_scores, warm_scores, cold_seconds, warm_seconds

    first, second, cold_scores, warm_scores, cold_seconds, warm_seconds = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print_table(
        "Shared cache directory — independent services, same fingerprint",
        ["run", "seconds", "responses/s", "hit rate", "warm-started"],
        [
            ("cold", cold_seconds, len(jobs) / cold_seconds, first.metrics.hit_rate, first.metrics.warm_start_entries),
            ("warm", warm_seconds, len(jobs) / warm_seconds, second.metrics.hit_rate, second.metrics.warm_start_entries),
        ],
    )
    assert warm_scores == cold_scores, "a shared cache must not change scores"
    assert second.metrics.warm_start_entries > 0, "run 2 must warm-start from run 1's shard"
    assert second.metrics.cache_misses == 0 and second.metrics.hit_rate == 1.0
    assert warm_seconds < cold_seconds
