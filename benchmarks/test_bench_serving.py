"""Throughput of the feedback-serving subsystem.

Three claims are measured: a warm cache answers a repeated workload ≥2×
faster than the cold pass; dedup alone beats the serial rescoring loop; and
the ``"process"`` backend scales cold-batch formal verification with worker
count on multi-core machines (on a single-core machine the sweep still runs
and must stay score-identical, but no speedup is asserted).  The workload
mirrors preference-pair collection: every task's response library, with
duplicates, scored against the full 15-rule book — including the
highway-merge scenario (``merge_onto_highway``, now in the task catalogue).
"""

import os
import time

from repro.core.config import FeedbackConfig
from repro.driving import all_specifications, response_templates, task_by_name, training_tasks
from repro.serving import FeedbackJob, FeedbackService, ServingConfig

from conftest import print_table

#: The highway-merge task (wired into the catalogue's training split).
MERGE_TASK = task_by_name("merge_onto_highway")

DUPLICATES_PER_RESPONSE = 3


def _workload(duplicates: int = DUPLICATES_PER_RESPONSE) -> list:
    """Every template for a spread of tasks, duplicated as sampling would."""
    jobs = []
    for task in list(training_tasks()[:4]) + [MERGE_TASK]:
        responses = list(response_templates(task.name, "compliant"))
        responses += list(response_templates(task.name, "flawed"))
        for response in responses * duplicates:
            jobs.append(FeedbackJob(task=task.name, scenario=task.scenario, response=response))
    return jobs


def test_bench_serving_cold_vs_warm_throughput(benchmark):
    jobs = _workload()
    service = FeedbackService(
        all_specifications(),
        feedback=FeedbackConfig(),
        config=ServingConfig(backend="thread", max_workers=4, cache_size=4096),
    )

    def run():
        cold_start = time.perf_counter()
        cold_scores = service.score_batch(jobs)
        cold_seconds = time.perf_counter() - cold_start
        warm_start = time.perf_counter()
        warm_scores = service.score_batch(jobs)
        warm_seconds = time.perf_counter() - warm_start
        return cold_scores, warm_scores, cold_seconds, warm_seconds

    cold_scores, warm_scores, cold_seconds, warm_seconds = benchmark.pedantic(run, rounds=1, iterations=1)

    cold_throughput = len(jobs) / cold_seconds
    warm_throughput = len(jobs) / warm_seconds
    stats = service.cache.stats()
    print_table(
        "Feedback serving — cold vs warm cache",
        ["pass", "responses", "seconds", "responses/s"],
        [
            ("cold", len(jobs), cold_seconds, cold_throughput),
            ("warm", len(jobs), warm_seconds, warm_throughput),
        ],
    )
    print_table(
        "Serving telemetry",
        ["dedup rate", "cache hit rate", "cache size", "unique verified"],
        [(service.metrics.dedup_rate, stats.hit_rate, stats.size, stats.misses)],
    )

    assert warm_scores == cold_scores, "cache must not change scores"
    assert warm_throughput >= 2 * cold_throughput, (
        f"warm cache should be >=2x faster: cold {cold_throughput:.1f}/s, warm {warm_throughput:.1f}/s"
    )
    assert service.metrics.dedup_rate > 0, "duplicated workload must dedup"
    assert stats.hit_rate > 0, "warm pass must hit the cache"


def test_bench_serving_beats_serial_rescoring(benchmark):
    """The service's whole point: repeated scoring is cheaper than the serial loop."""
    jobs = _workload()
    serial = FeedbackService(
        all_specifications(), feedback=FeedbackConfig(), config=ServingConfig(enabled=False)
    )
    served = FeedbackService(all_specifications(), feedback=FeedbackConfig())

    def run():
        serial_start = time.perf_counter()
        serial_scores = serial.score_batch(jobs)
        serial_seconds = time.perf_counter() - serial_start
        served_start = time.perf_counter()
        served_scores = served.score_batch(jobs)
        served_seconds = time.perf_counter() - served_start
        return serial_scores, serial_seconds, served_scores, served_seconds

    serial_scores, serial_seconds, served_scores, served_seconds = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print_table(
        "Serial loop vs deduplicating service (same cold workload)",
        ["path", "seconds", "responses/s"],
        [
            ("serial", serial_seconds, len(jobs) / serial_seconds),
            ("service", served_seconds, len(jobs) / served_seconds),
        ],
    )
    assert served_scores == serial_scores
    # Dedup alone removes ~2/3 of the verification work on this workload.
    assert served_seconds < serial_seconds


def _unique_cold_workload(copies: int = 4) -> list:
    """``copies`` canonically-distinct variants of every template — all misses.

    Each variant appends a different number of benign trailing steps, so no
    two share a canonical form (no dedup, no cache hits) while all remain
    parseable controllers.  This stretches the cold batch to a second or two
    of serial verification, giving the multi-core speedup assertion margins
    far wider than pool start-up noise.
    """
    jobs = []
    for job in _workload(duplicates=1):
        steps = len(job.response.splitlines())
        for copy in range(copies):
            suffix = "".join(
                f"\n{steps + 1 + extra}. If there is a pedestrian, stop." for extra in range(copy)
            )
            jobs.append(FeedbackJob(task=job.task, scenario=job.scenario, response=job.response + suffix))
    return jobs


def test_bench_serving_process_backend_worker_scaling(benchmark):
    """Cold formal batches through the process backend, sweeping pool width.

    Every response is unique (no dedup, no cache hits), so the whole batch is
    verification work — the workload the GIL-bound thread backend cannot
    accelerate.  Scores must be bitwise-identical across the sweep; the
    multi-core speedup is asserted only when the machine actually has the
    cores to show it.
    """
    base_jobs = _unique_cold_workload()
    sweeps = [("serial", 1), ("process", 1), ("process", 2), ("process", 4)]

    def run():
        results = {}
        for backend, workers in sweeps:
            service = FeedbackService(
                all_specifications(),
                feedback=FeedbackConfig(),
                config=ServingConfig(backend=backend, max_workers=workers, cache_size=4096),
            )
            start = time.perf_counter()
            scores = service.score_batch(base_jobs)
            seconds = time.perf_counter() - start
            results[(backend, workers)] = (scores, seconds)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (backend, workers, seconds, len(base_jobs) / seconds)
        for (backend, workers), (_, seconds) in results.items()
    ]
    print_table(
        f"Process backend — cold formal batch vs workers ({os.cpu_count()} cores available)",
        ["backend", "workers", "seconds", "responses/s"],
        rows,
    )

    reference = results[("serial", 1)][0]
    assert all(scores == reference for scores, _ in results.values()), (
        "every backend/worker combination must produce bitwise-identical scores"
    )
    if (os.cpu_count() or 1) >= 2:
        serial_seconds = results[("serial", 1)][1]
        best_process = min(results[("process", w)][1] for w in (2, 4))
        assert best_process < serial_seconds, (
            f"on a {os.cpu_count()}-core machine the process backend should beat "
            f"serial on a cold batch: serial {serial_seconds:.2f}s, process {best_process:.2f}s"
        )


def test_bench_serving_shared_cache_dir_warm_starts_across_services(benchmark, tmp_path):
    """Two independent services sharing a cache directory: run 2 is all hits."""
    jobs = _workload()
    shared = str(tmp_path / "shared_cache")

    def run():
        first = FeedbackService(
            all_specifications(), feedback=FeedbackConfig(),
            config=ServingConfig(shared_cache_dir=shared),
        )
        cold_start = time.perf_counter()
        cold_scores = first.score_batch(jobs)
        cold_seconds = time.perf_counter() - cold_start
        first.flush()
        second = FeedbackService(
            all_specifications(), feedback=FeedbackConfig(),
            config=ServingConfig(shared_cache_dir=shared),
        )
        warm_start = time.perf_counter()
        warm_scores = second.score_batch(jobs)
        warm_seconds = time.perf_counter() - warm_start
        return first, second, cold_scores, warm_scores, cold_seconds, warm_seconds

    first, second, cold_scores, warm_scores, cold_seconds, warm_seconds = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print_table(
        "Shared cache directory — independent services, same fingerprint",
        ["run", "seconds", "responses/s", "hit rate", "warm-started"],
        [
            ("cold", cold_seconds, len(jobs) / cold_seconds, first.metrics.hit_rate, first.metrics.warm_start_entries),
            ("warm", warm_seconds, len(jobs) / warm_seconds, second.metrics.hit_rate, second.metrics.warm_start_entries),
        ],
    )
    assert warm_scores == cold_scores, "a shared cache must not change scores"
    assert second.metrics.warm_start_entries > 0, "run 2 must warm-start from run 1's shard"
    assert second.metrics.cache_misses == 0 and second.metrics.hit_rate == 1.0
    assert warm_seconds < cold_seconds
