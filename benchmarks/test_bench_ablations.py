"""Ablations of the design choices called out in DESIGN.md.

1. Pruned vs conservative system model (Section 4.1): verification verdicts
   stay compatible while the conservative model is much larger/slower.
2. LoRA rank (Appendix E): trainable-parameter fraction vs rank.
3. Responses per prompt m: preference-pair budget N·C(m,2).
"""

import time

from repro.core import conservative_driving_model
from repro.driving import all_specifications, response_templates, task_by_name
from repro.feedback import FormalVerifier, max_pairs
from repro.glm2fsa import build_controller_from_text
from repro.lm import ModelConfig, TransformerLM
from repro.lm.lora import LoRAConfig, apply_lora

from conftest import print_table


def test_ablation_pruned_vs_conservative_model(benchmark):
    task = task_by_name("turn_right_traffic_light")
    controller = build_controller_from_text(response_templates(task.name, "compliant")[0], task=task.name)
    specs = {name: formula for name, formula in all_specifications().items() if name in {"phi_3", "phi_5", "phi_9"}}
    verifier = FormalVerifier(specs)

    def run():
        results = {}
        pruned_model = task.model()
        start = time.perf_counter()
        pruned = verifier.verify_controller(pruned_model, controller, task="pruned")
        pruned_time = time.perf_counter() - start

        conservative_model = conservative_driving_model(
            ["green_traffic_light", "car_from_left", "pedestrian_at_right", "pedestrian"],
            name="conservative_traffic_light",
        )
        start = time.perf_counter()
        conservative = verifier.verify_controller(conservative_model, controller, task="conservative")
        conservative_time = time.perf_counter() - start
        results["pruned"] = (pruned_model.num_states, pruned.num_satisfied, pruned_time)
        results["conservative"] = (conservative_model.num_states, conservative.num_satisfied, conservative_time)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [(name, states, satisfied, seconds) for name, (states, satisfied, seconds) in results.items()]
    print_table("Ablation — pruned vs conservative system model (Φ3, Φ5, Φ9)",
                ["model", "states", "satisfied", "seconds"], rows)

    assert results["conservative"][0] > results["pruned"][0]
    # The conservative model adds behaviours, so it can only make verification
    # stricter: it never reports more satisfied specifications than the pruned model.
    assert results["conservative"][1] <= results["pruned"][1]
    assert results["pruned"][1] == len(verifier.specifications)


def test_ablation_lora_rank(benchmark):
    def run():
        rows = []
        for rank in (1, 2, 4, 8, 16):
            model = TransformerLM(ModelConfig(vocab_size=200, max_seq_len=64, dim=64, num_heads=4, num_layers=2, hidden_dim=128), seed=0)
            summary = apply_lora(model, LoRAConfig(rank=rank, seed=0))
            rows.append((rank, summary["trainable_parameters"], summary["trainable_fraction"]))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Ablation — LoRA rank vs trainable parameters", ["rank", "trainable params", "fraction"], rows)
    fractions = [fraction for _, _, fraction in rows]
    assert fractions == sorted(fractions)
    assert fractions[0] < 0.05          # rank 1 touches a tiny fraction of the model
    assert fractions[-1] < 0.5          # even rank 16 stays parameter-efficient


def test_ablation_responses_per_prompt(benchmark):
    def run():
        return [(m, max_pairs(8, m)) for m in (2, 3, 4, 6, 8)]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Ablation — responses per prompt m vs preference-pair budget (8 tasks)", ["m", "max pairs"], rows)
    budgets = [budget for _, budget in rows]
    assert budgets == sorted(budgets)
    assert budgets[-1] == 8 * 28
